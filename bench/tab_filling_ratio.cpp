// Section 5 reproduction: the paper's headline result — "an overall filling
// ratio of 51% for the micropipeline circuits and 76% for the QDI circuits".
//
// Filling ratio = used LE outputs / (4 outputs x occupied LEs): a QDI
// dual-rail function fills an LE with two rails plus the LUT2 validity
// (3/4), bundled-data logic fills 1-2 of 4. We sweep adder widths and FIFO
// depths in both styles — the whole grid runs as one FlowJob set on a
// FlowService (machine-width compiles, one shared RR graph) — and print
// the paper's numbers alongside.
#include <cstdio>

#include "asynclib/adders.hpp"
#include "asynclib/fifos.hpp"
#include "base/check.hpp"
#include "base/strings.hpp"
#include "base/table.hpp"
#include "cad/flow_service.hpp"
#include "eval/metrics.hpp"
#include "eval/sweep.hpp"

using namespace afpga;

namespace {

struct Entry {
    std::string design;
    std::string style;
    netlist::Netlist nl;
    asynclib::MappingHints hints;
};

struct Row {
    std::string design;
    std::string style;
    eval::FillingRatio f;
};

}  // namespace

int main() {
    std::printf("=== Filling ratio by style (paper: QDI 76%%, micropipeline 51%%) ===\n\n");

    // Generate the whole design grid up front (jobs borrow the netlists).
    std::vector<Entry> entries;
    for (std::size_t n : {std::size_t{1}, std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
        auto q = asynclib::make_qdi_adder(n);
        entries.push_back({"adder-" + std::to_string(n) + "b", "QDI dual-rail",
                           std::move(q.nl), std::move(q.hints)});
        auto m = asynclib::make_micropipeline_adder(n);
        entries.push_back(
            {"adder-" + std::to_string(n) + "b", "micropipeline", std::move(m.nl), {}});
    }
    for (std::size_t d : {std::size_t{2}, std::size_t{4}}) {
        auto q = asynclib::make_wchb_fifo(4, d);
        entries.push_back({"fifo-4b-x" + std::to_string(d), "QDI dual-rail (WCHB)",
                           std::move(q.nl), std::move(q.hints)});
        auto m = asynclib::make_micropipeline_fifo(4, d);
        entries.push_back(
            {"fifo-4b-x" + std::to_string(d), "micropipeline", std::move(m.nl), {}});
        auto t2 = asynclib::make_mousetrap_fifo(4, d);
        entries.push_back(
            {"fifo-4b-x" + std::to_string(d), "2-ph mousetrap", std::move(t2.nl), {}});
    }

    core::ArchSpec arch = core::paper_arch();
    // The wide sweeps need more room than the default 8x8 array.
    arch.width = 12;
    arch.height = 12;
    arch.channel_width = 16;

    cad::FlowService svc;
    std::vector<cad::FlowJob> jobs;
    for (const Entry& e : entries) {
        cad::FlowJob j;
        j.name = e.design + " / " + e.style;
        j.nl = &e.nl;
        j.hints = &e.hints;
        j.arch = arch;
        jobs.push_back(std::move(j));
    }
    const auto results = eval::run_grid(svc, std::move(jobs));

    std::vector<Row> rows;
    for (std::size_t i = 0; i < entries.size(); ++i) {
        base::check(results[i]->ok(), "tab_filling_ratio: flow failed for " +
                                          results[i]->name + ": " + results[i]->error);
        rows.push_back(
            {entries[i].design, entries[i].style, eval::filling_ratio(results[i]->result)});
    }

    base::TextTable t({"design", "style", "LEs", "PLBs", "filling (LE outputs)",
                       "PLB resources", "halves"});
    double qdi_sum = 0;
    int qdi_n = 0;
    double mp_sum = 0;
    int mp_n = 0;
    for (const Row& r : rows) {
        t.add_row({r.design, r.style, std::to_string(r.f.used_les),
                   std::to_string(r.f.occupied_plbs), base::format_percent(r.f.outputs),
                   base::format_percent(r.f.plb_resources), base::format_percent(r.f.halves)});
        if (r.style.rfind("QDI", 0) == 0) {
            qdi_sum += r.f.outputs;
            ++qdi_n;
        } else {
            mp_sum += r.f.outputs;
            ++mp_n;
        }
    }
    std::printf("%s\n", t.render().c_str());

    base::TextTable s({"style", "overall filling (measured)", "paper"});
    s.add_row({"QDI dual-rail", base::format_percent(qdi_sum / qdi_n), "76%"});
    s.add_row({"bundled data (4-ph micropipeline + 2-ph mousetrap)",
               base::format_percent(mp_sum / mp_n), "51%"});
    std::printf("%s\n", s.render().c_str());

    std::printf("Shape check: QDI fills the multi-output LEs markedly better than\n");
    std::printf("bundled data (paper: +25pp; measured: +%.0fpp). The absolute QDI\n",
                (qdi_sum / qdi_n - mp_sum / mp_n) * 100.0);
    std::printf("value is below the paper's 76%% because DIMS OR planes and C-trees\n");
    std::printf("cannot use the validity slot (see EXPERIMENTS.md).\n");
    return 0;
}
