// Ablation abl-A: how much Interconnection Matrix does the architecture
// actually need?
//
// The paper's IM is the PLB's flexibility anchor: it closes memory-element
// loops locally and makes all PLB pins equivalent. We deplete it — full
// crossbar, 50%, 25% populated, and a variant with no LE-output -> LE-input
// feedback paths — and report which designs remain implementable and at what
// cost. The flow already performs topology-aware LE pin matching, so a
// failure here is architectural, not a tool artefact.
#include <cstdio>

#include "asynclib/adders.hpp"
#include "asynclib/fifos.hpp"
#include "base/check.hpp"
#include "base/strings.hpp"
#include "base/table.hpp"
#include "cad/flow.hpp"
#include "eval/metrics.hpp"

using namespace afpga;

namespace {

std::string attempt(const netlist::Netlist& nl, const asynclib::MappingHints& hints,
                    core::ImTopology topo, std::string* detail) {
    core::ArchSpec arch = core::paper_arch();
    arch.width = 12;
    arch.height = 12;
    arch.channel_width = 16;
    arch.im_topology = topo;
    // Try a few seeds: sparse IMs make pin matching placement-sensitive.
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        cad::FlowOptions opts;
        opts.seed = seed;
        try {
            const auto fr = cad::run_flow(nl, hints, arch, opts);
            const auto f = eval::filling_ratio(fr);
            *detail = "filling " + base::format_percent(f.outputs) + ", seed " +
                      std::to_string(seed);
            return "OK";
        } catch (const base::Error& e) {
            *detail = e.what();
        }
    }
    // Classify the failure for the table.
    if (detail->find("cannot deliver") != std::string::npos ||
        detail->find("feedback") != std::string::npos)
        return "UNMAPPABLE";
    if (detail->find("routing failed") != std::string::npos) return "UNROUTABLE";
    return "FAILED";
}

}  // namespace

int main() {
    std::printf("=== abl-A: IM topology ablation ===\n\n");
    base::TextTable t({"design", "IM topology", "result", "detail"});

    struct Design {
        std::string name;
        netlist::Netlist nl;
        asynclib::MappingHints hints;
    };
    std::vector<Design> designs;
    {
        auto d = asynclib::make_qdi_adder(2);
        designs.push_back({"qdi-adder-2b", std::move(d.nl), std::move(d.hints)});
    }
    {
        auto d = asynclib::make_micropipeline_adder(2);
        designs.push_back({"mp-adder-2b", std::move(d.nl), {}});
    }
    {
        auto d = asynclib::make_wchb_fifo(2, 2);
        designs.push_back({"wchb-fifo-2x2", std::move(d.nl), std::move(d.hints)});
    }

    for (const Design& d : designs) {
        for (core::ImTopology topo :
             {core::ImTopology::FullCrossbar, core::ImTopology::Sparse50,
              core::ImTopology::Sparse25, core::ImTopology::NoFeedback}) {
            std::string detail;
            const std::string result = attempt(d.nl, d.hints, topo, &detail);
            if (detail.size() > 60) detail = detail.substr(0, 57) + "...";
            t.add_row({d.name, to_string(topo), result, detail});
        }
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("Expected shape: the full crossbar implements every style; removing\n");
    std::printf("LE feedback breaks ALL asynchronous designs (no memory elements —\n");
    std::printf("the paper's looped-logic mechanism is essential); sparse IMs trade\n");
    std::printf("configuration bits against mappability.\n");
    return 0;
}
