// Ablation abl-A: how much Interconnection Matrix does the architecture
// actually need?
//
// The paper's IM is the PLB's flexibility anchor: it closes memory-element
// loops locally and makes all PLB pins equivalent. We deplete it — full
// crossbar, 50%, 25% populated, and a variant with no LE-output -> LE-input
// feedback paths — and report which designs remain implementable and at what
// cost. The flow already performs topology-aware LE pin matching, so a
// failure here is architectural, not a tool artefact.
#include <cstdio>

#include "asynclib/adders.hpp"
#include "asynclib/fifos.hpp"
#include "base/check.hpp"
#include "base/strings.hpp"
#include "base/table.hpp"
#include "cad/flow_service.hpp"
#include "eval/metrics.hpp"
#include "eval/sweep.hpp"

using namespace afpga;

namespace {

constexpr std::uint64_t kSeeds = 5;  ///< sparse IMs are placement-sensitive

/// Classify one (design, topology) cell from its per-seed results: the
/// lowest OK seed wins (same pick order as a serial seed loop); when every
/// seed fails, the last seed's error classifies the failure. `results`
/// holds the kSeeds jobs of this cell in seed order.
std::string classify(const std::vector<const cad::FlowJobResult*>& results,
                     std::size_t first, std::string* detail) {
    for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
        const cad::FlowJobResult& r = *results[first + seed - 1];
        if (r.ok()) {
            const auto f = eval::filling_ratio(r.result);
            *detail = "filling " + base::format_percent(f.outputs) + ", seed " +
                      std::to_string(seed);
            return "OK";
        }
        *detail = r.error;
    }
    if (detail->find("cannot deliver") != std::string::npos ||
        detail->find("feedback") != std::string::npos)
        return "UNMAPPABLE";
    if (detail->find("routing failed") != std::string::npos) return "UNROUTABLE";
    return "FAILED";
}

}  // namespace

int main() {
    std::printf("=== abl-A: IM topology ablation ===\n\n");
    base::TextTable t({"design", "IM topology", "result", "detail"});

    struct Design {
        std::string name;
        netlist::Netlist nl;
        asynclib::MappingHints hints;
    };
    std::vector<Design> designs;
    {
        auto d = asynclib::make_qdi_adder(2);
        designs.push_back({"qdi-adder-2b", std::move(d.nl), std::move(d.hints)});
    }
    {
        auto d = asynclib::make_micropipeline_adder(2);
        designs.push_back({"mp-adder-2b", std::move(d.nl), {}});
    }
    {
        auto d = asynclib::make_wchb_fifo(2, 2);
        designs.push_back({"wchb-fifo-2x2", std::move(d.nl), std::move(d.hints)});
    }

    // The full ablation grid — designs x topologies x seeds — as one
    // FlowJob set on one FlowService: all the seed retries of all the cells
    // compile concurrently, and the shared artifact store reuses each
    // design's techmap across every topology and seed (mapping is
    // architecture-independent). Deliberate tradeoff vs the old serial
    // loop: every seed compiles even when seed 1 succeeds (the serial loop
    // stopped early), buying full machine-width parallelism and identical
    // table output for a few discarded ms-scale flows per cell.
    const core::ImTopology topologies[] = {
        core::ImTopology::FullCrossbar, core::ImTopology::Sparse50,
        core::ImTopology::Sparse25, core::ImTopology::NoFeedback};

    cad::FlowService svc;
    std::vector<cad::FlowJob> jobs;
    for (const Design& d : designs) {
        for (core::ImTopology topo : topologies) {
            core::ArchSpec arch = core::paper_arch();
            arch.width = 12;
            arch.height = 12;
            arch.channel_width = 16;
            arch.im_topology = topo;
            for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
                cad::FlowJob j;
                j.name = d.name + "/" + to_string(topo) + "/s" + std::to_string(seed);
                j.nl = &d.nl;
                j.hints = &d.hints;
                j.arch = arch;
                j.opts.seed = seed;
                jobs.push_back(std::move(j));
            }
        }
    }
    const auto results = eval::run_grid(svc, std::move(jobs));

    std::size_t cell = 0;
    for (const Design& d : designs) {
        for (core::ImTopology topo : topologies) {
            std::string detail;
            const std::string result = classify(results, cell * kSeeds, &detail);
            if (detail.size() > 60) detail = detail.substr(0, 57) + "...";
            t.add_row({d.name, to_string(topo), result, detail});
            ++cell;
        }
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("Expected shape: the full crossbar implements every style; removing\n");
    std::printf("LE feedback breaks ALL asynchronous designs (no memory elements —\n");
    std::printf("the paper's looped-logic mechanism is essential); sparse IMs trade\n");
    std::printf("configuration bits against mappability.\n");
    return 0;
}
