// Ablation abl-B: Programmable Delay Element resolution and margin.
//
// The PDE is what lets the fabric host timing-assumption styles. Two knobs
// matter: the tap quantum (resolution of the programmable delay) and the
// safety margin the flow programs on top of the estimated datapath delay.
// We sweep both for a micropipeline adder, then verify the bundling
// constraint post-route by simulation: a too-coarse PDE or too-thin margin
// corrupts long-carry sums exactly as the theory predicts.
#include <cstdio>
#include <iterator>

#include "asynclib/adders.hpp"
#include "base/check.hpp"
#include "base/strings.hpp"
#include "base/table.hpp"
#include "cad/flow_service.hpp"
#include "eval/sweep.hpp"
#include "sim/monitors.hpp"
#include "sim/simulator.hpp"
#include "sim/testbench.hpp"

using namespace afpga;

namespace {

struct Outcome {
    std::string status;
    int correct = 0;
    int total = 0;
    std::int64_t pde_delay_ps = 0;
};

/// Post-route bundling verification of one already-compiled configuration
/// (the flows themselves run as a grid on a FlowService in main; margin-only
/// neighbours share every stage but the bitstream through the artifact
/// cache).
Outcome evaluate(const cad::FlowJobResult& job) {
    Outcome o;
    if (!job.ok()) {
        o.status = job.error.find("PDE range") != std::string::npos ? "PDE range exceeded"
                                                                    : "flow failed";
        return o;
    }
    const cad::FlowResult& fr = job.result;
    const core::ArchSpec& arch = fr.arch;  // the architecture the flow compiled against
    // Read back the programmed PDE delay from the bitstream.
    for (std::size_t ci = 0; ci < fr.packed.clusters.size(); ++ci) {
        if (!fr.packed.clusters[ci].pde_index) continue;
        o.pde_delay_ps = fr.bits->plb(fr.placement.cluster_loc[ci]).pde.delay_ps(arch);
    }

    const auto design = fr.elaborate();
    sim::Simulator sim(design.nl);
    for (const auto& d : core::resolve_wire_delays(design))
        sim.set_sink_delay(d.net, d.sink_idx, d.delay_ps);
    sim.run();

    auto po_net = [&](const std::string& name) {
        for (const auto& [n, net] : design.nl.primary_outputs())
            if (n == name) return net;
        base::fail("missing PO " + name);
    };
    sim::BundledStageIface iface;
    for (std::size_t i = 0; i < 4; ++i)
        iface.data_in.push_back(design.nl.find_net(base::bus_bit("a", i)));
    for (std::size_t i = 0; i < 4; ++i)
        iface.data_in.push_back(design.nl.find_net(base::bus_bit("b", i)));
    iface.data_in.push_back(design.nl.find_net("cin"));
    iface.req_in = design.nl.find_net("req_in");
    iface.ack_out = design.nl.find_net("ack_out");
    for (std::size_t i = 0; i < 4; ++i) iface.data_out.push_back(po_net(base::bus_bit("sum", i)));
    iface.data_out.push_back(po_net("cout"));
    iface.req_out = po_net("req_out");
    iface.ack_in = po_net("ack_in");

    // Long-carry patterns stress the matched delay hardest.
    const std::uint64_t stims[] = {0xF | (0x1 << 4), 0xF | (0xF << 4), 0x8 | (0x8 << 4),
                                   0x7 | (0x9 << 4), 0x1 | (0xF << 4), 0xF | (0x1 << 4) | (1 << 8)};
    for (std::uint64_t v : stims) {
        const std::uint64_t a = v & 0xF;
        const std::uint64_t b = (v >> 4) & 0xF;
        const std::uint64_t cin = (v >> 8) & 1;
        ++o.total;
        try {
            if (sim::bundled_apply_token(sim, iface, v, 200) == a + b + cin) ++o.correct;
        } catch (const base::Error&) {
            // X sampled or handshake stuck: counts as incorrect.
        }
    }
    o.status = o.correct == o.total ? "PASS" : "DATA CORRUPTED";
    return o;
}

}  // namespace

int main() {
    std::printf("=== abl-B: PDE resolution / margin vs bundling constraint "
                "(4-bit micropipeline adder, post-route) ===\n\n");
    base::TextTable t({"tap quantum", "taps", "extra margin", "programmed delay",
                       "long-carry tokens", "verdict"});
    struct Cfg {
        std::int64_t quantum;
        std::uint32_t taps;
        double margin;
    };
    const Cfg cfgs[] = {
        {250, 32, 1.0}, {250, 32, 0.5}, {250, 32, 0.0}, {500, 16, 1.0}, {500, 16, 0.0},
        {1000, 8, 1.0}, {2000, 4, 0.0}, {125, 64, 1.0}, {250, 4, 1.0},
    };

    // One design, nine {resolution, margin} points: the sweep is a FlowJob
    // grid on one FlowService. Margin-only variants reuse the cached
    // techmap/pack/place/route artifacts (the margin is programmed by the
    // bitstream stage alone); simulation stays serial below.
    auto adder = asynclib::make_micropipeline_adder(4);
    cad::FlowService svc;
    std::vector<cad::FlowJob> jobs;
    for (const Cfg& c : cfgs) {
        core::ArchSpec arch = core::paper_arch();
        arch.pde_quantum_ps = c.quantum;
        arch.pde_taps = c.taps;
        cad::FlowJob j;
        j.name = "q" + std::to_string(c.quantum) + "_t" + std::to_string(c.taps) + "_m" +
                 base::format_percent(c.margin, 0);
        j.nl = &adder.nl;
        j.arch = arch;
        j.opts.pde_extra_margin = c.margin;
        jobs.push_back(std::move(j));
    }
    const auto results = eval::run_grid(svc, std::move(jobs));

    for (std::size_t i = 0; i < std::size(cfgs); ++i) {
        const Cfg& c = cfgs[i];
        const Outcome o = evaluate(*results[i]);
        t.add_row({std::to_string(c.quantum) + " ps", std::to_string(c.taps),
                   base::format_percent(c.margin, 0),
                   o.pde_delay_ps ? std::to_string(o.pde_delay_ps) + " ps" : "-",
                   o.total ? std::to_string(o.correct) + "/" + std::to_string(o.total) : "-",
                   o.status});
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("Expected shape: generous margin + fine resolution pass; a PDE whose\n");
    std::printf("range cannot cover the routed datapath is rejected by the flow; a\n");
    std::printf("zero-margin configuration rides the estimate and corrupts long-carry\n");
    std::printf("sums when routing adds delay the estimate missed.\n");
    return 0;
}
