// Negative tests for the protocol monitors: they must detect deliberately
// broken traffic, not merely stay silent on clean traffic (which
// test_asynclib already covers).
#include <gtest/gtest.h>

#include "asynclib/styles.hpp"
#include "netlist/netlist.hpp"
#include "sim/channels.hpp"
#include "sim/monitors.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace afpga;
using asynclib::DualRail;
using netlist::CellFunc;
using netlist::Logic;
using netlist::NetId;
using netlist::Netlist;
using sim::Simulator;

struct DrFixture {
    Netlist nl;
    DualRail bit;
    NetId ack;
    DrFixture() {
        bit.t = nl.add_input("t");
        bit.f = nl.add_input("f");
        ack = nl.add_input("ack");
        nl.add_output("t", bit.t);
    }
};

TEST(DualRailMonitor, FlagsBothRailsHigh) {
    DrFixture fx;
    Simulator sim(fx.nl);
    sim.run();
    sim::DualRailChannelMonitor mon(sim, {fx.bit}, fx.ack, "ch");
    sim.schedule_pi(fx.bit.t, Logic::T, 0);
    sim.schedule_pi(fx.bit.f, Logic::T, 10);  // illegal: 1-of-2 violated
    sim.run();
    ASSERT_FALSE(mon.violations().empty());
    EXPECT_NE(mon.violations()[0].what.find("both rails"), std::string::npos);
}

TEST(DualRailMonitor, FlagsRetractionBeforeAck) {
    DrFixture fx;
    Simulator sim(fx.nl);
    sim.run();
    sim::DualRailChannelMonitor mon(sim, {fx.bit}, fx.ack, "ch");
    sim.schedule_pi(fx.bit.t, Logic::T, 0);
    sim.schedule_pi(fx.bit.t, Logic::F, 100);  // retract with ack still low
    sim.run();
    ASSERT_FALSE(mon.violations().empty());
    EXPECT_NE(mon.violations()[0].what.find("retracted"), std::string::npos);
}

TEST(DualRailMonitor, FlagsRiseDuringRtz) {
    DrFixture fx;
    Simulator sim(fx.nl);
    sim.run();
    sim::DualRailChannelMonitor mon(sim, {fx.bit}, fx.ack, "ch");
    sim.schedule_pi(fx.bit.t, Logic::T, 0);
    sim.schedule_pi(fx.ack, Logic::T, 100);
    sim.schedule_pi(fx.bit.t, Logic::F, 200);
    sim.schedule_pi(fx.bit.f, Logic::T, 250);  // new data before ack fell
    sim.run();
    bool found = false;
    for (const auto& v : mon.violations())
        found |= v.what.find("return-to-zero") != std::string::npos;
    EXPECT_TRUE(found);
}

TEST(DualRailMonitor, CleanCycleCountsToken) {
    DrFixture fx;
    Simulator sim(fx.nl);
    sim.run();
    sim::DualRailChannelMonitor mon(sim, {fx.bit}, fx.ack, "ch");
    sim.schedule_pi(fx.bit.t, Logic::T, 0);
    sim.schedule_pi(fx.ack, Logic::T, 100);
    sim.schedule_pi(fx.bit.t, Logic::F, 200);
    sim.schedule_pi(fx.ack, Logic::F, 300);
    sim.run();
    EXPECT_TRUE(mon.violations().empty());
    EXPECT_EQ(mon.tokens_seen(), 1u);
}

struct BdFixture {
    Netlist nl;
    std::vector<NetId> data;
    NetId req;
    NetId ack;
    BdFixture() {
        data = {nl.add_input("d0"), nl.add_input("d1")};
        req = nl.add_input("req");
        ack = nl.add_input("ack");
        nl.add_output("d0", data[0]);
    }
};

TEST(BundledMonitor, FlagsDataChangeWhileOutstanding) {
    BdFixture fx;
    Simulator sim(fx.nl);
    sim.run();
    sim::BundledChannelMonitor mon(sim, fx.data, fx.req, fx.ack, "ch");
    sim.schedule_pi(fx.data[0], Logic::T, 0);
    sim.schedule_pi(fx.req, Logic::T, 50);
    sim.schedule_pi(fx.data[1], Logic::T, 80);  // bundling broken
    sim.run();
    ASSERT_FALSE(mon.violations().empty());
    EXPECT_NE(mon.violations()[0].what.find("bundling"), std::string::npos);
}

TEST(BundledMonitor, DataChangeAfterAckIsFine) {
    BdFixture fx;
    Simulator sim(fx.nl);
    sim.run();
    sim::BundledChannelMonitor mon(sim, fx.data, fx.req, fx.ack, "ch");
    sim.schedule_pi(fx.data[0], Logic::T, 0);
    sim.schedule_pi(fx.req, Logic::T, 50);
    sim.schedule_pi(fx.ack, Logic::T, 100);    // receiver captured
    sim.schedule_pi(fx.data[1], Logic::T, 150);  // now data may churn
    sim.run();
    EXPECT_TRUE(mon.violations().empty());
}

TEST(BundledMonitor, SamplesTokenAtReqRise) {
    BdFixture fx;
    Simulator sim(fx.nl);
    sim.run();
    sim::BundledChannelMonitor mon(sim, fx.data, fx.req, fx.ack, "ch");
    sim.schedule_pi(fx.data[0], Logic::T, 0);
    sim.schedule_pi(fx.data[1], Logic::T, 0);
    sim.schedule_pi(fx.req, Logic::T, 50);
    sim.run();
    ASSERT_EQ(mon.tokens().size(), 1u);
    EXPECT_EQ(mon.tokens()[0], 0b11u);
}

TEST(TwoPhaseMonitor, FlagsDataChangeBetweenReqAndAckToggles) {
    BdFixture fx;
    Simulator sim(fx.nl);
    sim.run();
    sim::TwoPhaseBundledMonitor mon(sim, fx.data, fx.req, fx.ack, "ch");
    sim.schedule_pi(fx.data[0], Logic::T, 0);
    sim.schedule_pi(fx.req, Logic::T, 50);       // token outstanding (toggle)
    sim.schedule_pi(fx.data[1], Logic::T, 80);   // bundling broken
    sim.run();
    ASSERT_FALSE(mon.violations().empty());
}

TEST(TwoPhaseMonitor, SamplesTokenOnBothReqEdges) {
    BdFixture fx;
    Simulator sim(fx.nl);
    sim.run();
    sim::TwoPhaseBundledMonitor mon(sim, fx.data, fx.req, fx.ack, "ch");
    // Token 1: req rises (0 -> 1), ack toggles back.
    sim.schedule_pi(fx.data[0], Logic::T, 0);
    sim.schedule_pi(fx.req, Logic::T, 50);
    sim.schedule_pi(fx.ack, Logic::T, 100);
    // Token 2: data changes while idle, then req FALLS (1 -> 0) — in
    // 2-phase signalling a falling edge carries a token too.
    sim.schedule_pi(fx.data[1], Logic::T, 150);
    sim.schedule_pi(fx.req, Logic::F, 200);
    sim.schedule_pi(fx.ack, Logic::F, 250);
    sim.run();
    EXPECT_TRUE(mon.violations().empty());
    ASSERT_EQ(mon.tokens().size(), 2u);
    EXPECT_EQ(mon.tokens()[0], 0b01u);
    EXPECT_EQ(mon.tokens()[1], 0b11u);
}

TEST(TokenTimes, SteadyPeriodIgnoresWarmup) {
    sim::TokenTimes tt;
    // Warm-up gaps of 500, steady gaps of 100.
    tt.at_ps = {0, 500, 1000, 1100, 1200, 1300, 1400};
    EXPECT_NEAR(tt.steady_period_ps(), 100.0, 1e-9);
}

TEST(TokenTimes, TooFewTokensIsZero) {
    sim::TokenTimes tt;
    tt.at_ps = {0, 100};
    EXPECT_EQ(tt.steady_period_ps(), 0.0);
}

}  // namespace
