// Fault injection for the FlowServer socket front-end: wire-vs-in-process
// bit identity over both transports, request-level errors that must not kill
// the connection, garbage bytes that must kill exactly one connection,
// client disconnects cancelling queued jobs and orphaning running ones,
// cancel-after-disconnect, slow-reader backpressure with a bounded outbound
// backlog, Busy queue-bound backpressure, graceful drain, and a multi-client
// soak pinning per-client fairness + priority scheduling + bit identity.
// The CI TSan leg executes this binary.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "asynclib/adders.hpp"
#include "base/check.hpp"
#include "cad/flow.hpp"
#include "cad/flow_client.hpp"
#include "cad/flow_server.hpp"
#include "cad/serialize.hpp"

namespace {

using namespace afpga;
namespace wire = cad::wire;

std::string sock_path(const std::string& name) {
    return (std::filesystem::temp_directory_path() / ("afpga_fs_" + name + ".sock")).string();
}

/// Poll `pred` for up to `ms` milliseconds (server state lands via the IO
/// thread, so assertions on stats/status need a settle window).
template <typename Pred>
bool eventually(Pred pred, int ms = 5000) {
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
    while (std::chrono::steady_clock::now() < deadline) {
        if (pred()) return true;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return pred();
}

/// The in-process reference: run the flow locally and encode the result
/// exactly the way the server streams it.
std::vector<std::uint8_t> local_blob(const netlist::Netlist& nl,
                                     const asynclib::MappingHints& hints,
                                     const core::ArchSpec& arch, const cad::FlowOptions& opts) {
    const cad::FlowResult fr = cad::run_flow(nl, hints, arch, opts);
    return cad::ArtifactCodec<cad::BitstreamArtifact>::encode_blob(
        cad::BitstreamArtifact{*fr.bits, fr.pad_names});
}

cad::RemoteJobSpec adder_job(const asynclib::QdiAdder& d, const core::ArchSpec& arch,
                             std::uint64_t seed, int priority = 0) {
    cad::RemoteJobSpec j;
    j.name = "adder_s" + std::to_string(seed);
    j.priority = priority;
    j.nl = &d.nl;
    j.hints = &d.hints;
    j.arch = arch;
    j.opts.seed = seed;
    return j;
}

// --- raw-socket helpers (for protocol-level fault injection) ----------------

int connect_unix_raw(const std::string& path) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    base::check(path.size() < sizeof(addr.sun_path), "raw: path too long");
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    base::check(fd >= 0, "raw: socket failed");
    base::check(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0,
                "raw: connect failed");
    return fd;
}

void send_all_raw(int fd, const std::vector<std::uint8_t>& bytes) {
    std::size_t off = 0;
    while (off < bytes.size()) {
        const ssize_t n = ::send(fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
        base::check(n > 0, "raw: send failed");
        off += static_cast<std::size_t>(n);
    }
}

void send_frame_raw(int fd, wire::MsgType t, const std::vector<std::uint8_t>& payload) {
    send_all_raw(fd, wire::encode_frame(t, payload));
}

/// Read until the server closes the connection (it poisons by sending a
/// best-effort Error frame and then dropping us). Returns the bytes seen.
std::vector<std::uint8_t> drain_until_eof_raw(int fd) {
    std::vector<std::uint8_t> seen;
    std::uint8_t buf[4096];
    for (;;) {
        const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
        if (n <= 0) break;
        seen.insert(seen.end(), buf, buf + n);
    }
    return seen;
}

wire::Frame read_frame_raw(int fd, wire::FrameDecoder& dec, std::size_t max_read = 64 * 1024) {
    for (;;) {
        if (auto f = dec.next()) return *std::move(f);
        std::vector<std::uint8_t> buf(max_read);
        const ssize_t n = ::recv(fd, buf.data(), buf.size(), 0);
        base::check(n > 0, "raw: server closed the connection");
        dec.feed(buf.data(), static_cast<std::size_t>(n));
    }
}

// ---------------------------------------------------------------------------

TEST(FlowServer, UnixAndTcpResultsAreByteIdenticalToInProcess) {
    auto adder = asynclib::make_qdi_adder(2);
    const core::ArchSpec arch;

    cad::FlowServerOptions so;
    so.unix_path = sock_path("both");
    so.tcp = true;  // ephemeral port
    so.service.threads = 2;
    cad::FlowServer server(std::move(so));
    server.start();

    cad::FlowClient over_unix = cad::FlowClient::connect_unix(server.unix_path(), "u");
    cad::FlowClient over_tcp =
        cad::FlowClient::connect_tcp("127.0.0.1", server.tcp_port(), "t");
    EXPECT_NE(over_unix.lane(), over_tcp.lane());

    const std::uint64_t id_u = over_unix.submit(adder_job(adder, arch, 1));
    const std::uint64_t id_t = over_tcp.submit(adder_job(adder, arch, 2));

    const cad::RemoteFlowResult ru = over_unix.wait(id_u, "u_s1");
    const cad::RemoteFlowResult rt = over_tcp.wait(id_t, "t_s2");
    ASSERT_TRUE(ru.ok()) << ru.error;
    ASSERT_TRUE(rt.ok()) << rt.error;
    EXPECT_FALSE(ru.telemetry_json.empty());
    EXPECT_GT(ru.start_seq, 0u);

    cad::FlowOptions o1, o2;
    o1.seed = 1;
    o2.seed = 2;
    EXPECT_EQ(ru.result_blob, local_blob(adder.nl, adder.hints, arch, o1));
    EXPECT_EQ(rt.result_blob, local_blob(adder.nl, adder.hints, arch, o2));
    // The blob decodes back into a usable artifact.
    EXPECT_GT(ru.decode_bitstream().bits.size_bits(), 0u);

    const cad::FlowServerStats st = server.stats();
    EXPECT_EQ(st.submits_accepted, 2u);
    EXPECT_EQ(st.results_streamed, 2u);
    EXPECT_EQ(st.protocol_errors, 0u);
    server.stop();
}

TEST(FlowServer, RequestErrorsDoNotPoisonTheConnection) {
    auto adder = asynclib::make_qdi_adder(2);
    const core::ArchSpec arch;
    cad::FlowServerOptions so;
    so.unix_path = sock_path("reqerr");
    so.service.threads = 1;
    cad::FlowServer server(std::move(so));
    server.start();

    cad::FlowClient client = cad::FlowClient::connect_unix(server.unix_path());
    EXPECT_THROW((void)client.status(1234), base::Error);   // unknown job
    EXPECT_THROW((void)client.wait(1234), base::Error);     // unknown job
    // The connection survives request-level errors: a real compile works.
    const std::uint64_t id = client.submit(adder_job(adder, arch, 1));
    ASSERT_TRUE(client.wait(id).ok());
    // A streamed result is gone: a second Wait is UnknownJob, not a replay.
    EXPECT_THROW((void)client.wait(id), base::Error);
    EXPECT_EQ(server.stats().protocol_errors, 0u);  // none of these poison
    server.stop();
}

TEST(FlowServer, GarbageBytesPoisonOnlyThatConnection) {
    auto adder = asynclib::make_qdi_adder(2);
    const core::ArchSpec arch;
    cad::FlowServerOptions so;
    so.unix_path = sock_path("garbage");
    so.service.threads = 1;
    cad::FlowServer server(std::move(so));
    server.start();

    {
        // Not even a valid header: the server must poison this connection.
        // Hold the socket open until the server's Error-and-drop lands, so
        // the bytes are actually read (closing first would just look like a
        // plain disconnect).
        const int fd = connect_unix_raw(server.unix_path());
        std::vector<std::uint8_t> junk(64);
        for (std::size_t i = 0; i < junk.size(); ++i) junk[i] = static_cast<std::uint8_t>(i ^ 0x5a);
        send_all_raw(fd, junk);
        const std::vector<std::uint8_t> reply = drain_until_eof_raw(fd);
        EXPECT_FALSE(reply.empty());  // best-effort Error frame preceded the drop
        ::close(fd);
    }
    {
        // A well-formed frame out of protocol order (Status before Hello)
        // is equally poisonous.
        const int fd = connect_unix_raw(server.unix_path());
        wire::StatusMsg m;
        m.job_id = 0;
        send_frame_raw(fd, wire::MsgType::Status, wire::encode_payload(m));
        wire::FrameDecoder dec;
        std::vector<std::uint8_t> reply = drain_until_eof_raw(fd);
        dec.feed(reply);
        const auto err = dec.next();
        ASSERT_TRUE(err.has_value());
        EXPECT_EQ(err->type, wire::MsgType::Error);
        ::close(fd);
    }
    EXPECT_TRUE(eventually([&] { return server.stats().protocol_errors >= 2; }));
    EXPECT_TRUE(eventually([&] { return server.stats().connections_dropped >= 2; }));

    // A healthy client on the same server is completely unaffected.
    cad::FlowClient client = cad::FlowClient::connect_unix(server.unix_path());
    const std::uint64_t id = client.submit(adder_job(adder, arch, 1));
    const cad::RemoteFlowResult r = client.wait(id);
    ASSERT_TRUE(r.ok()) << r.error;
    cad::FlowOptions o;
    o.seed = 1;
    EXPECT_EQ(r.result_blob, local_blob(adder.nl, adder.hints, arch, o));
    server.stop();
}

TEST(FlowServer, DisconnectCancelsQueuedJobsAndRetiresOrphans) {
    auto adder = asynclib::make_qdi_adder(2);
    const core::ArchSpec arch;
    cad::FlowServerOptions so;
    so.unix_path = sock_path("disc");
    so.service.threads = 1;
    cad::FlowServer server(std::move(so));
    server.start();

    // Three jobs parked in a paused queue, then the client vanishes: every
    // one must be cancelled on disconnect (none ever ran).
    server.service().pause();
    {
        cad::FlowClient client = cad::FlowClient::connect_unix(server.unix_path());
        for (std::uint64_t seed = 1; seed <= 3; ++seed)
            (void)client.submit(adder_job(adder, arch, seed));
    }  // destructor closes the socket
    EXPECT_TRUE(eventually([&] { return server.stats().jobs_cancelled_on_disconnect == 3; }));
    EXPECT_TRUE(eventually([&] { return server.stats().connections_dropped == 1; }));
    server.service().resume();

    // A running job whose client vanishes finishes as an orphan and is
    // retired (its result freed) rather than leaking.
    std::uint64_t orphan_id = 0;
    {
        cad::FlowClient client = cad::FlowClient::connect_unix(server.unix_path());
        orphan_id = client.submit(adder_job(adder, arch, 4));
        EXPECT_TRUE(eventually([&] {
            return server.service().peek(orphan_id).status != cad::FlowJobStatus::Queued;
        }));
    }
    EXPECT_TRUE(eventually([&] { return server.service().peek(orphan_id).taken; }));
    EXPECT_EQ(server.stats().results_streamed, 0u);
    server.stop();
}

TEST(FlowServer, CancelAfterDisconnectIsCleanForTheNextClient) {
    auto adder = asynclib::make_qdi_adder(2);
    const core::ArchSpec arch;
    cad::FlowServerOptions so;
    so.unix_path = sock_path("cancel");
    so.service.threads = 1;
    cad::FlowServer server(std::move(so));
    server.start();

    server.service().pause();
    std::uint64_t id = 0;
    {
        cad::FlowClient a = cad::FlowClient::connect_unix(server.unix_path(), "a");
        id = a.submit(adder_job(adder, arch, 1));
    }
    EXPECT_TRUE(eventually([&] { return server.stats().jobs_cancelled_on_disconnect == 1; }));

    // A second client cancelling the ghost job gets a clean "already
    // settled" reply — not an error, not a crash.
    cad::FlowClient b = cad::FlowClient::connect_unix(server.unix_path(), "b");
    EXPECT_FALSE(b.cancel(id));
    EXPECT_EQ(b.status(id).status, static_cast<std::uint8_t>(cad::FlowJobStatus::Cancelled));
    // Cancelling a job id that never existed is a request-level error.
    EXPECT_THROW((void)b.cancel(id + 100), base::Error);
    server.service().resume();
    server.stop();
}

TEST(FlowServer, SlowReaderBackpressureBoundsTheOutboundBacklog) {
    // A ~540 KB result (tiny design, huge fabric -> big bitstream) streamed
    // to a reader sipping 2 KB at a time. The server may buffer at most
    // max_conn_outbound_bytes + one chunk frame per connection; the blob is
    // several times that, so streaming must pause and resume — and the
    // reassembled bytes must still be checksum-perfect and bit-identical.
    auto adder = asynclib::make_qdi_adder(4);
    core::ArchSpec arch;
    arch.width = arch.height = 64;
    arch.channel_width = 32;

    cad::FlowServerOptions so;
    so.unix_path = sock_path("slow");
    so.service.threads = 1;
    so.max_conn_outbound_bytes = 32 * 1024;
    cad::FlowServer server(std::move(so));
    server.start();

    const int fd = connect_unix_raw(server.unix_path());
    wire::FrameDecoder dec;
    wire::HelloMsg hello;
    hello.client_name = "slow_reader";
    send_frame_raw(fd, wire::MsgType::Hello, wire::encode_payload(hello));
    ASSERT_EQ(read_frame_raw(fd, dec).type, wire::MsgType::HelloOk);

    wire::SubmitMsg submit;
    submit.name = "big_blob";
    submit.nl = adder.nl;
    submit.hints = adder.hints;
    submit.arch = arch;
    submit.opts.seed = 1;
    send_frame_raw(fd, wire::MsgType::Submit, wire::encode_payload(submit));
    const wire::Frame ok = read_frame_raw(fd, dec);
    ASSERT_EQ(ok.type, wire::MsgType::SubmitOk);
    const std::uint64_t id = wire::decode_submit_ok(ok.payload).job_id;

    wire::WaitMsg wait;
    wait.job_id = id;
    send_frame_raw(fd, wire::MsgType::Wait, wire::encode_payload(wait));

    // Sip the stream: tiny reads with a pause between them, so the kernel
    // buffers fill and the server's own backlog cap has to do the limiting.
    std::vector<std::uint8_t> blob;
    std::uint64_t announced = 0;
    for (bool done = false; !done;) {
        const wire::Frame f = read_frame_raw(fd, dec, /*max_read=*/2048);
        switch (f.type) {
            case wire::MsgType::ResultBegin: {
                const wire::ResultBeginMsg begin = wire::decode_result_begin(f.payload);
                ASSERT_EQ(begin.status, static_cast<std::uint8_t>(cad::FlowJobStatus::Ok))
                    << begin.error;
                announced = begin.result_bytes;
                break;
            }
            case wire::MsgType::ResultChunk: {
                const wire::ResultChunkMsg chunk = wire::decode_result_chunk(f.payload);
                ASSERT_EQ(chunk.offset, blob.size());
                blob.insert(blob.end(), chunk.bytes.begin(), chunk.bytes.end());
                std::this_thread::sleep_for(std::chrono::milliseconds(1));
                break;
            }
            case wire::MsgType::ResultEnd: {
                const wire::ResultEndMsg end = wire::decode_result_end(f.payload);
                EXPECT_EQ(end.checksum, wire::fnv1a64(blob.data(), blob.size()));
                done = true;
                break;
            }
            default:
                FAIL() << "unexpected frame " << wire::to_string(f.type);
        }
    }
    ::close(fd);

    ASSERT_EQ(blob.size(), announced);
    cad::FlowOptions o;
    o.seed = 1;
    EXPECT_EQ(blob, local_blob(adder.nl, adder.hints, arch, o));

    // Bounded memory: the blob is much larger than the cap, yet the peak
    // backlog never exceeded cap + one chunk frame (+ header slack).
    const cad::FlowServerStats st = server.stats();
    const std::uint64_t bound = 32 * 1024 + wire::kResultChunkBytes + 4096;
    EXPECT_GT(blob.size(), 4u * bound / 2u);  // the cap had to engage
    EXPECT_LE(st.max_outbound_bytes_observed, bound);
    EXPECT_EQ(st.results_streamed, 1u);
    server.stop();
}

TEST(FlowServer, BusyBackpressureHonoursTheQueueBound) {
    auto adder = asynclib::make_qdi_adder(2);
    const core::ArchSpec arch;
    cad::FlowServerOptions so;
    so.unix_path = sock_path("busy");
    so.service.threads = 1;
    so.max_pending = 2;
    so.retry_after_ms = 5;
    cad::FlowServer server(std::move(so));
    server.start();

    server.service().pause();
    cad::FlowClient client = cad::FlowClient::connect_unix(server.unix_path());
    EXPECT_EQ(client.max_pending(), 2u);
    std::vector<std::uint64_t> ids;
    for (std::uint64_t seed = 1; seed <= 2; ++seed) {
        const auto id = client.try_submit(adder_job(adder, arch, seed));
        ASSERT_TRUE(id.has_value()) << seed;
        ids.push_back(*id);
    }
    // The queue is at its bound: the next submit bounces with Busy.
    EXPECT_FALSE(client.try_submit(adder_job(adder, arch, 3)).has_value());
    EXPECT_GE(server.stats().submits_rejected_busy, 1u);
    EXPECT_LE(server.stats().max_queue_depth_observed, 2u);

    // submit() rides the backpressure out once the queue drains.
    server.service().resume();
    ids.push_back(client.submit(adder_job(adder, arch, 3)));
    for (std::size_t i = 0; i < ids.size(); ++i) {
        const cad::RemoteFlowResult r = client.wait(ids[i]);
        ASSERT_TRUE(r.ok()) << r.error;
        cad::FlowOptions o;
        o.seed = i + 1;
        EXPECT_EQ(r.result_blob, local_blob(adder.nl, adder.hints, arch, o));
    }
    server.stop();
}

TEST(FlowServer, DrainRefusesSubmitsServesWaitsThenSettles) {
    auto adder = asynclib::make_qdi_adder(2);
    const core::ArchSpec arch;
    cad::FlowServerOptions so;
    so.unix_path = sock_path("drain");
    so.service.threads = 1;
    cad::FlowServer server(std::move(so));
    server.start();

    server.service().pause();
    cad::FlowClient client = cad::FlowClient::connect_unix(server.unix_path());
    const std::uint64_t id = client.submit(adder_job(adder, arch, 1));

    // Drain with the queue still full: the accepted job must survive.
    EXPECT_EQ(client.drain_server(), 1u);
    try {
        (void)client.try_submit(adder_job(adder, arch, 2));
        FAIL() << "submit during drain was accepted";
    } catch (const base::Error& e) {
        EXPECT_NE(std::string(e.what()).find("draining"), std::string::npos) << e.what();
    }
    EXPECT_GE(server.stats().submits_rejected_draining, 1u);

    // The parked wait is still served after the queue resumes...
    server.service().resume();
    const cad::RemoteFlowResult r = client.wait(id);
    ASSERT_TRUE(r.ok()) << r.error;
    cad::FlowOptions o;
    o.seed = 1;
    EXPECT_EQ(r.result_blob, local_blob(adder.nl, adder.hints, arch, o));

    // ...and with every job terminal and every stream flushed, the server
    // settles into Drained.
    EXPECT_TRUE(eventually([&] { return server.is_drained(); }));
    server.wait_drained();  // returns immediately once settled
    server.stop();
}

TEST(FlowServer, MultiClientSoakIsFairPriorityAwareAndBitIdentical) {
    // Three clients park three jobs each in a paused queue, then a fourth
    // client adds one high-priority job. On resume the scheduler must run
    // the priority job first and round-robin the rest across the client
    // lanes (A B C A B C A B C by dispatch order), and every result must be
    // byte-identical to an in-process compile of the same seed.
    auto adder = asynclib::make_qdi_adder(2);
    const core::ArchSpec arch;
    cad::FlowServerOptions so;
    so.unix_path = sock_path("soak");
    so.service.threads = 2;
    cad::FlowServer server(std::move(so));
    server.start();

    server.service().pause();
    std::vector<cad::FlowClient> clients;
    for (const char* name : {"a", "b", "c"})
        clients.push_back(cad::FlowClient::connect_unix(server.unix_path(), name));

    std::vector<std::vector<std::uint64_t>> ids(3);
    std::vector<std::vector<std::uint64_t>> seeds(3);
    std::uint64_t seed = 1;
    for (std::size_t c = 0; c < clients.size(); ++c) {
        for (int j = 0; j < 3; ++j, ++seed) {
            ids[c].push_back(clients[c].submit(adder_job(adder, arch, seed)));
            seeds[c].push_back(seed);
        }
    }
    cad::FlowClient vip = cad::FlowClient::connect_unix(server.unix_path(), "vip");
    const std::uint64_t vip_id = vip.submit(adder_job(adder, arch, seed, /*priority=*/5));
    server.service().resume();

    // Collect everything; clients wait concurrently like real tools would.
    struct Seen {
        std::uint64_t start_seq = 0;
        std::uint32_t lane = 0;
    };
    std::vector<Seen> seen;
    std::mutex seen_mu;
    std::vector<std::thread> waiters;
    for (std::size_t c = 0; c < clients.size(); ++c) {
        waiters.emplace_back([&, c] {
            for (std::size_t j = 0; j < ids[c].size(); ++j) {
                const cad::RemoteFlowResult r = clients[c].wait(ids[c][j]);
                ASSERT_TRUE(r.ok()) << r.error;
                cad::FlowOptions o;
                o.seed = seeds[c][j];
                EXPECT_EQ(r.result_blob, local_blob(adder.nl, adder.hints, arch, o));
                std::lock_guard<std::mutex> lock(seen_mu);
                seen.push_back({r.start_seq, clients[c].lane()});
            }
        });
    }
    const cad::RemoteFlowResult vip_res = vip.wait(vip_id);
    for (auto& t : waiters) t.join();
    ASSERT_TRUE(vip_res.ok()) << vip_res.error;

    // The priority job was dispatched first despite being submitted last.
    EXPECT_EQ(vip_res.start_seq, 1u);

    // The other nine dispatched round-robin across the three client lanes.
    std::sort(seen.begin(), seen.end(),
              [](const Seen& x, const Seen& y) { return x.start_seq < y.start_seq; });
    ASSERT_EQ(seen.size(), 9u);
    for (std::size_t i = 0; i < seen.size(); ++i) {
        EXPECT_EQ(seen[i].start_seq, i + 2) << i;  // dense after the vip job
        EXPECT_EQ(seen[i].lane, clients[i % 3].lane()) << "dispatch slot " << i;
    }

    const cad::FlowServerStats st = server.stats();
    EXPECT_EQ(st.submits_accepted, 10u);
    EXPECT_EQ(st.results_streamed, 10u);
    EXPECT_EQ(st.protocol_errors, 0u);
    server.stop();
}

}  // namespace
