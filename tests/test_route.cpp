// Unit tests of the PathFinder router against hand-built requests on small
// fabrics: legality, pin equivalence, congestion negotiation, delay
// accounting and failure reporting.
#include <gtest/gtest.h>

#include <set>

#include "cad/route.hpp"
#include "core/rrgraph.hpp"

namespace {

using namespace afpga;
using cad::RouteRequest;
using cad::RouterOptions;
using core::ArchSpec;
using core::PlbCoord;
using core::RRGraph;

ArchSpec small_arch(std::uint32_t w = 4, std::uint32_t h = 4, std::uint32_t cw = 8) {
    ArchSpec a;
    a.width = w;
    a.height = h;
    a.channel_width = cw;
    return a;
}

RouteRequest plb_to_plb(PlbCoord from, PlbCoord to) {
    RouteRequest rq;
    rq.src_plb = from;
    RouteRequest::Sink sk;
    sk.plb = to;
    rq.sinks.push_back(sk);
    return rq;
}

TEST(Router, SingleNetRoutes) {
    const RRGraph rr(small_arch());
    const auto res = cad::route(rr, {plb_to_plb({0, 0}, {3, 3})});
    ASSERT_TRUE(res.success);
    const auto& tree = res.trees[0];
    EXPECT_NE(tree.root_opin, UINT32_MAX);
    EXPECT_NE(tree.sinks[0].ipin, UINT32_MAX);
    EXPECT_GT(tree.edges.size(), 0u);
    EXPECT_GT(tree.sinks[0].delay_ps, 0);
}

TEST(Router, PathIsConnectedRootToSink) {
    const RRGraph rr(small_arch());
    const auto res = cad::route(rr, {plb_to_plb({0, 0}, {3, 0})});
    ASSERT_TRUE(res.success);
    const auto& tree = res.trees[0];
    // Walk edges as adjacency: the sink must be reachable from the root.
    std::set<std::uint32_t> reach{tree.root_opin};
    bool changed = true;
    while (changed) {
        changed = false;
        for (std::uint32_t e : tree.edges) {
            if (reach.count(rr.edge_source(e)) && !reach.count(rr.edge_target(e))) {
                reach.insert(rr.edge_target(e));
                changed = true;
            }
        }
    }
    EXPECT_TRUE(reach.count(tree.sinks[0].ipin));
}

TEST(Router, MulticastSharesTrunk) {
    const RRGraph rr(small_arch());
    RouteRequest rq = plb_to_plb({0, 0}, {3, 0});
    RouteRequest::Sink sk2;
    sk2.plb = {3, 3};
    rq.sinks.push_back(sk2);
    const auto res = cad::route(rr, {rq});
    ASSERT_TRUE(res.success);
    EXPECT_NE(res.trees[0].sinks[0].ipin, res.trees[0].sinks[1].ipin);
    // One root for the whole tree.
    EXPECT_NE(res.trees[0].root_opin, UINT32_MAX);
}

TEST(Router, ManyNetsNoOveruse) {
    const RRGraph rr(small_arch());
    std::vector<RouteRequest> reqs;
    for (std::uint32_t i = 0; i < 4; ++i)
        for (std::uint32_t j = 0; j < 4; ++j)
            if (i != j) reqs.push_back(plb_to_plb({i, 0}, {j, 3}));
    const auto res = cad::route(rr, reqs);
    ASSERT_TRUE(res.success);
    // No RR node may serve two nets: collect all tree nodes and check.
    std::set<std::uint32_t> used;
    for (const auto& t : res.trees) {
        std::set<std::uint32_t> mine{t.root_opin};
        for (std::uint32_t e : t.edges) {
            mine.insert(rr.edge_source(e));
            mine.insert(rr.edge_target(e));
        }
        for (std::uint32_t n : mine) EXPECT_TRUE(used.insert(n).second) << "node shared";
    }
}

TEST(Router, PinEquivalenceSpreadsIpins) {
    // Several nets into the same PLB must take distinct input pins.
    const RRGraph rr(small_arch());
    std::vector<RouteRequest> reqs;
    reqs.push_back(plb_to_plb({0, 0}, {2, 2}));
    reqs.push_back(plb_to_plb({1, 0}, {2, 2}));
    reqs.push_back(plb_to_plb({3, 0}, {2, 2}));
    reqs.push_back(plb_to_plb({0, 3}, {2, 2}));
    const auto res = cad::route(rr, reqs);
    ASSERT_TRUE(res.success);
    std::set<std::uint32_t> ipins;
    for (const auto& t : res.trees) EXPECT_TRUE(ipins.insert(t.sinks[0].ipin).second);
}

TEST(Router, AllowedSrcPinsRespected) {
    const RRGraph rr(small_arch());
    RouteRequest rq = plb_to_plb({1, 1}, {3, 3});
    rq.allowed_src_pins = {5};
    const auto res = cad::route(rr, {rq});
    ASSERT_TRUE(res.success);
    EXPECT_EQ(res.trees[0].root_opin, rr.plb_opin({1, 1}, 5));
}

TEST(Router, PadToPlbAndBack) {
    const RRGraph rr(small_arch());
    RouteRequest in;
    in.src_is_pad = true;
    in.src_pad = 0;
    RouteRequest::Sink sk;
    sk.plb = {2, 2};
    in.sinks.push_back(sk);
    RouteRequest out;
    out.src_plb = {2, 2};
    RouteRequest::Sink pad_sink;
    pad_sink.is_pad = true;
    pad_sink.pad = 7;
    out.sinks.push_back(pad_sink);
    const auto res = cad::route(rr, {in, out});
    ASSERT_TRUE(res.success);
    EXPECT_EQ(res.trees[1].sinks[0].ipin, rr.pad_ipin(7));
}

TEST(Router, DelayGrowsWithDistance) {
    const RRGraph rr(small_arch(8, 8, 10));
    const auto near = cad::route(rr, {plb_to_plb({0, 0}, {1, 0})});
    const auto far = cad::route(rr, {plb_to_plb({0, 0}, {7, 7})});
    ASSERT_TRUE(near.success && far.success);
    EXPECT_GT(far.trees[0].sinks[0].delay_ps, near.trees[0].sinks[0].delay_ps * 2);
}

TEST(Router, ImpossibleCongestionReportsFailure) {
    // 1x1 fabric: all nets must leave/enter the single PLB; starve the
    // channels so two nets cannot coexist.
    ArchSpec a = small_arch(2, 1, 2);
    a.fc_in = 1.0;
    a.fc_out = 1.0;
    const RRGraph rr(a);
    std::vector<RouteRequest> reqs;
    // More nets PLB(0,0)->PLB(1,0) than the 2-track channel can hold in
    // one... actually tracks are per segment; saturate with many parallel.
    for (int i = 0; i < 12; ++i) reqs.push_back(plb_to_plb({0, 0}, {1, 0}));
    RouterOptions opts;
    opts.max_iterations = 6;
    const auto res = cad::route(rr, reqs);
    if (!res.success) {
        EXPECT_FALSE(res.overuse_report.empty());
    } else {
        SUCCEED() << "fabric had enough pins/tracks after all";
    }
}

TEST(Router, DeterministicResult) {
    const RRGraph rr(small_arch());
    std::vector<RouteRequest> reqs;
    for (std::uint32_t i = 0; i < 3; ++i) reqs.push_back(plb_to_plb({i, 0}, {i, 3}));
    const auto a = cad::route(rr, reqs);
    const auto b = cad::route(rr, reqs);
    ASSERT_TRUE(a.success && b.success);
    for (std::size_t i = 0; i < reqs.size(); ++i) {
        EXPECT_EQ(a.trees[i].root_opin, b.trees[i].root_opin);
        EXPECT_EQ(a.trees[i].edges, b.trees[i].edges);
    }
}

TEST(Router, AstarMatchesDijkstraLegality) {
    const RRGraph rr(small_arch(6, 6, 10));
    std::vector<RouteRequest> reqs;
    for (std::uint32_t i = 0; i < 5; ++i) reqs.push_back(plb_to_plb({i, 0}, {5 - i, 5}));
    RouterOptions astar;
    RouterOptions dijkstra;
    dijkstra.astar_fac = 0.0;
    const auto ra = cad::route(rr, reqs, astar);
    const auto rd = cad::route(rr, reqs, dijkstra);
    EXPECT_TRUE(ra.success);
    EXPECT_TRUE(rd.success);
    // A* may differ in paths but not in legality; delays stay comparable.
    for (std::size_t i = 0; i < reqs.size(); ++i)
        EXPECT_LT(ra.trees[i].sinks[0].delay_ps,
                  3 * rd.trees[i].sinks[0].delay_ps + 1000);
}

}  // namespace
