// Functional tests of the asynchronous style library: DIMS QDI blocks,
// 1-of-4 blocks, WCHB FIFOs, micropipeline stages — all verified by
// event-driven simulation with protocol monitors attached.
#include <gtest/gtest.h>

#include "asynclib/adders.hpp"
#include "base/check.hpp"
#include "asynclib/dualrail.hpp"
#include "asynclib/fifos.hpp"
#include "asynclib/oneofn.hpp"
#include "base/rng.hpp"
#include "sim/channels.hpp"
#include "sim/monitors.hpp"
#include "sim/simulator.hpp"
#include "sim/testbench.hpp"

namespace {

using namespace afpga;
using asynclib::DualRail;
using netlist::CellFunc;
using netlist::Logic;
using netlist::NetId;
using netlist::Netlist;
using netlist::TruthTable;
using sim::Simulator;

TEST(DualRail, OrTreeReduces) {
    Netlist nl;
    std::vector<NetId> ins;
    for (int i = 0; i < 9; ++i) ins.push_back(nl.add_input("i" + std::to_string(i)));
    const NetId root = asynclib::or_tree(nl, ins, "root", 4);
    nl.add_output("root", root);
    nl.validate();
    Simulator sim(nl);
    sim.run();
    EXPECT_EQ(sim.value(root), Logic::F);
    sim.schedule_pi(ins[7], Logic::T);
    sim.run();
    EXPECT_EQ(sim.value(root), Logic::T);
}

TEST(DualRail, CTreeJoinsAll) {
    Netlist nl;
    std::vector<NetId> ins;
    for (int i = 0; i < 5; ++i) ins.push_back(nl.add_input("i" + std::to_string(i)));
    const NetId root = asynclib::c_tree(nl, ins, "root", 2);
    nl.add_output("root", root);
    Simulator sim(nl);
    sim.run();
    for (int i = 0; i < 4; ++i) {
        sim.schedule_pi(ins[i], Logic::T);
        sim.run();
        EXPECT_EQ(sim.value(root), Logic::F) << "joined too early at " << i;
    }
    sim.schedule_pi(ins[4], Logic::T);
    sim.run();
    EXPECT_EQ(sim.value(root), Logic::T);
    sim.schedule_pi(ins[2], Logic::F);
    sim.run();
    EXPECT_EQ(sim.value(root), Logic::T);  // holds until all fall
}

TEST(Dims, ExpansionCountsForFullAdder) {
    Netlist nl;
    const auto ins = asynclib::add_dual_rail_inputs(nl, "x", 3);
    const auto res = asynclib::expand_dims(
        nl, {asynclib::full_adder_sum_tt(), asynclib::full_adder_cout_tt()}, ins, "fa");
    EXPECT_EQ(res.num_minterm_gates, 8u);  // 2^3 C3 gates, shared
    EXPECT_EQ(res.outputs.size(), 2u);
    // 2 output rail pairs + 4 adjacent-minterm co-tenancy pairs.
    EXPECT_EQ(res.hints.rail_pairs.size(), 6u);
}

class QdiAdderTokens : public ::testing::TestWithParam<std::size_t> {};

TEST_P(QdiAdderTokens, AllInputTokensComputeCorrectSum) {
    const std::size_t n = GetParam();
    auto adder = asynclib::make_qdi_adder(n);
    Simulator sim(adder.nl);
    sim.run();

    sim::QdiCombIface iface;
    iface.inputs = adder.a;
    iface.inputs.insert(iface.inputs.end(), adder.b.begin(), adder.b.end());
    iface.inputs.push_back(adder.cin);
    iface.outputs = adder.sum;
    iface.outputs.push_back(adder.cout);
    iface.done = adder.done;

    const std::uint64_t mask = (1ULL << n) - 1;
    const std::size_t exhaustive_bits = 2 * n + 1;
    const std::size_t cases = exhaustive_bits <= 9 ? (1ULL << exhaustive_bits) : 128;
    base::Rng rng(2024);
    for (std::size_t k = 0; k < cases; ++k) {
        const std::uint64_t v = exhaustive_bits <= 9 ? k : rng.next() & ((1ULL << exhaustive_bits) - 1);
        const std::uint64_t a = v & mask;
        const std::uint64_t b = (v >> n) & mask;
        const std::uint64_t cin = (v >> (2 * n)) & 1;
        const std::uint64_t out = sim::qdi_apply_token(sim, iface, v);
        const std::uint64_t expect = a + b + cin;
        EXPECT_EQ(out, expect) << "a=" << a << " b=" << b << " cin=" << cin;
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, QdiAdderTokens, ::testing::Values(1, 2, 3, 4));

TEST(QdiAdder, RailsAreMonotonicDuringCycle) {
    auto adder = asynclib::make_qdi_adder(1);
    Simulator sim(adder.nl);
    sim.run();
    std::vector<DualRail> outs = adder.sum;
    outs.push_back(adder.cout);
    // The completion signal plays the acknowledge role for the bare block.
    sim::DualRailChannelMonitor mon(sim, outs, adder.done, "fa.out");

    sim::QdiCombIface iface{{adder.a[0], adder.b[0], adder.cin}, outs, adder.done};
    for (std::uint64_t v = 0; v < 8; ++v) (void)sim::qdi_apply_token(sim, iface, v);
    EXPECT_TRUE(mon.violations().empty())
        << (mon.violations().empty() ? "" : mon.violations()[0].what);
    EXPECT_EQ(mon.tokens_seen(), 8u);
}

TEST(QdiAdder, NoGlitchesOnOutputRails) {
    auto adder = asynclib::make_qdi_adder(2);
    Simulator sim(adder.nl);
    sim.run();
    std::vector<NetId> watch;
    for (const auto& s : adder.sum) {
        watch.push_back(s.t);
        watch.push_back(s.f);
    }
    sim::GlitchMonitor mon(sim, watch, 30);
    sim::QdiCombIface iface;
    iface.inputs = adder.a;
    iface.inputs.insert(iface.inputs.end(), adder.b.begin(), adder.b.end());
    iface.inputs.push_back(adder.cin);
    iface.outputs = adder.sum;
    iface.outputs.push_back(adder.cout);
    iface.done = adder.done;
    for (std::uint64_t v = 0; v < 32; ++v) (void)sim::qdi_apply_token(sim, iface, v);
    EXPECT_TRUE(mon.glitches().empty());
}

TEST(Dims, RandomSpecsMatchByTokenSimulation) {
    base::Rng rng(555);
    for (int iter = 0; iter < 10; ++iter) {
        const std::size_t n = 2 + rng.below(3);  // 2..4 inputs
        std::vector<TruthTable> specs;
        const std::size_t n_out = 1 + rng.below(2);
        for (std::size_t o = 0; o < n_out; ++o)
            specs.push_back(
                TruthTable::from_function(n, [&](std::uint32_t) { return rng.chance(0.5); }));

        Netlist nl("rand");
        const auto ins = asynclib::add_dual_rail_inputs(nl, "x", n);
        const auto res = asynclib::expand_dims(nl, specs, ins, "f");
        const NetId done = asynclib::add_completion_detector(nl, res.outputs, "cd");
        for (std::size_t o = 0; o < n_out; ++o) {
            nl.add_output("o" + std::to_string(o) + ".t", res.outputs[o].t);
            nl.add_output("o" + std::to_string(o) + ".f", res.outputs[o].f);
        }
        nl.add_output("done", done);
        nl.validate();

        Simulator sim(nl);
        sim.run();
        sim::QdiCombIface iface{ins, res.outputs, done};
        for (std::uint32_t m = 0; m < (1u << n); ++m) {
            const std::uint64_t out = sim::qdi_apply_token(sim, iface, m);
            for (std::size_t o = 0; o < n_out; ++o)
                EXPECT_EQ(((out >> o) & 1) != 0, specs[o].eval(m))
                    << "iter=" << iter << " m=" << m << " o=" << o;
        }
    }
}

TEST(OneOfFour, RecodeDecodeRoundTrip) {
    Netlist nl;
    const auto dr = asynclib::add_dual_rail_inputs(nl, "x", 2);
    const auto digit = asynclib::recode_dual_rail_pair(nl, dr[0], dr[1], "d");
    const auto [lo, hi] = asynclib::decode_to_dual_rail(nl, digit, "y");
    nl.add_output("lo.t", lo.t);
    nl.add_output("lo.f", lo.f);
    nl.add_output("hi.t", hi.t);
    nl.add_output("hi.f", hi.f);
    const NetId done = asynclib::add_completion_detector(nl, {lo, hi}, "cd");
    nl.add_output("done", done);
    Simulator sim(nl);
    sim.run();
    sim::QdiCombIface iface{dr, {lo, hi}, done};
    for (std::uint64_t v = 0; v < 4; ++v) EXPECT_EQ(sim::qdi_apply_token(sim, iface, v), v);
}

TEST(OneOfFour, ExactlyOneRailFires) {
    Netlist nl;
    const auto dr = asynclib::add_dual_rail_inputs(nl, "x", 2);
    const auto digit = asynclib::recode_dual_rail_pair(nl, dr[0], dr[1], "d");
    for (int s = 0; s < 4; ++s)
        nl.add_output("r" + std::to_string(s), digit.rail[s]);
    Simulator sim(nl);
    sim.run();
    for (std::uint64_t v = 0; v < 4; ++v) {
        for (std::size_t i = 0; i < 2; ++i) {
            sim.schedule_pi(dr[i].t, netlist::from_bool((v >> i) & 1));
            sim.schedule_pi(dr[i].f, netlist::from_bool(!((v >> i) & 1)));
        }
        sim.run();
        int fired = 0;
        for (int s = 0; s < 4; ++s)
            fired += (sim.value(digit.rail[static_cast<std::size_t>(s)]) == Logic::T);
        EXPECT_EQ(fired, 1);
        EXPECT_EQ(sim.value(digit.rail[v]), Logic::T);
        for (std::size_t i = 0; i < 2; ++i) {
            sim.schedule_pi(dr[i].t, Logic::F);
            sim.schedule_pi(dr[i].f, Logic::F);
        }
        sim.run();
    }
}

TEST(OneOfFour, MintermExpansionComputesIncrement) {
    // 1-digit 1-of-4 increment mod 4: out = in + 1.
    Netlist nl;
    const auto ins = asynclib::add_one_of_four_inputs(nl, "x", 1);
    const auto bit0 = TruthTable::from_function(2, [](std::uint32_t m) {
        return (((m & 3) + 1) & 1) != 0;
    });
    const auto bit1 = TruthTable::from_function(2, [](std::uint32_t m) {
        return (((m & 3) + 1) & 2) != 0;
    });
    const auto res = asynclib::expand_one_of_four(nl, {bit0, bit1}, ins, "inc");
    ASSERT_EQ(res.outputs.size(), 1u);
    const NetId done = asynclib::add_of4_completion(nl, res.outputs, "cd");
    nl.add_output("done", done);
    for (int s = 0; s < 4; ++s)
        nl.add_output("r" + std::to_string(s), res.outputs[0].rail[static_cast<std::size_t>(s)]);
    Simulator sim(nl);
    sim.run();
    for (std::uint64_t v = 0; v < 4; ++v) {
        sim.schedule_pi(ins[0].rail[v], Logic::T);
        sim.run_until(done, Logic::T, sim.now() + 100000);
        ASSERT_EQ(sim.value(done), Logic::T);
        EXPECT_EQ(sim.value(res.outputs[0].rail[(v + 1) % 4]), Logic::T);
        sim.schedule_pi(ins[0].rail[v], Logic::F);
        sim.run_until(done, Logic::F, sim.now() + 100000);
        ASSERT_EQ(sim.value(done), Logic::F);
    }
}

TEST(MicropipelineAdder, AllTokensCorrect) {
    auto adder = asynclib::make_micropipeline_adder(1);
    Simulator sim(adder.nl);
    sim.run();
    sim::BundledStageIface iface;
    iface.data_in = adder.a;
    iface.data_in.insert(iface.data_in.end(), adder.b.begin(), adder.b.end());
    iface.data_in.push_back(adder.cin);
    iface.req_in = adder.req_in;
    iface.ack_out = adder.ack_out;
    iface.data_out = adder.sum;
    iface.data_out.push_back(adder.cout);
    iface.req_out = adder.req_out;
    iface.ack_in = adder.ack_in;
    for (std::uint64_t v = 0; v < 8; ++v) {
        const std::uint64_t a = v & 1;
        const std::uint64_t b = (v >> 1) & 1;
        const std::uint64_t cin = (v >> 2) & 1;
        const std::uint64_t out = sim::bundled_apply_token(sim, iface, v);
        EXPECT_EQ(out, a + b + cin) << "v=" << v;
    }
}

TEST(MicropipelineAdder, WideAdderRandomTokens) {
    auto adder = asynclib::make_micropipeline_adder(8);
    Simulator sim(adder.nl);
    sim.run();
    sim::BundledStageIface iface;
    iface.data_in = adder.a;
    iface.data_in.insert(iface.data_in.end(), adder.b.begin(), adder.b.end());
    iface.data_in.push_back(adder.cin);
    iface.req_in = adder.req_in;
    iface.ack_out = adder.ack_out;
    iface.data_out = adder.sum;
    iface.data_out.push_back(adder.cout);
    iface.req_out = adder.req_out;
    iface.ack_in = adder.ack_in;
    base::Rng rng(77);
    for (int k = 0; k < 40; ++k) {
        const std::uint64_t a = rng.below(256);
        const std::uint64_t b = rng.below(256);
        const std::uint64_t cin = rng.below(2);
        const std::uint64_t v = a | (b << 8) | (cin << 16);
        EXPECT_EQ(sim::bundled_apply_token(sim, iface, v), a + b + cin);
    }
}

TEST(MicropipelineAdder, BundlingRespectedWithDefaultMargin) {
    auto adder = asynclib::make_micropipeline_adder(4, 0.25);
    Simulator sim(adder.nl);
    sim.run();
    std::vector<NetId> out_data = adder.sum;
    out_data.push_back(adder.cout);
    sim::BundledChannelMonitor mon(sim, out_data, adder.req_out, adder.ack_out, "out");
    sim::BundledStageIface iface;
    iface.data_in = adder.a;
    iface.data_in.insert(iface.data_in.end(), adder.b.begin(), adder.b.end());
    iface.data_in.push_back(adder.cin);
    iface.req_in = adder.req_in;
    iface.ack_out = adder.ack_out;
    iface.data_out = out_data;
    iface.req_out = adder.req_out;
    iface.ack_in = adder.ack_in;
    base::Rng rng(5);
    for (int k = 0; k < 20; ++k) {
        const std::uint64_t a = rng.below(16);
        const std::uint64_t b = rng.below(16);
        const std::uint64_t v = a | (b << 4);
        (void)sim::bundled_apply_token(sim, iface, v);
    }
    EXPECT_TRUE(mon.violations().empty())
        << (mon.violations().empty() ? "" : mon.violations()[0].what);
}

TEST(MicropipelineAdder, UnderMarginedDelayBreaksBundling) {
    // Failure injection: strangle the matched delay far below the datapath
    // delay; the output request fires before the ripple carry settles, so the
    // sink samples a wrong sum for at least one token pattern.
    auto adder = asynclib::make_micropipeline_adder(8, 0.25);
    adder.nl.set_cell_delay(adder.stage.delay_cell, 1);  // sabotage
    Simulator sim(adder.nl);
    sim.run();
    sim::BundledStageIface iface;
    iface.data_in = adder.a;
    iface.data_in.insert(iface.data_in.end(), adder.b.begin(), adder.b.end());
    iface.data_in.push_back(adder.cin);
    iface.req_in = adder.req_in;
    iface.ack_out = adder.ack_out;
    iface.data_out = adder.sum;
    iface.data_out.push_back(adder.cout);
    iface.req_out = adder.req_out;
    iface.ack_in = adder.ack_in;
    int wrong = 0;
    // Long-carry patterns: 0xFF + 1 ripples through all bits.
    for (int k = 0; k < 8; ++k) {
        const std::uint64_t a = 0xFF;
        const std::uint64_t b = 1;
        const std::uint64_t v = a | (b << 8);
        std::uint64_t out = 0;
        try {
            out = sim::bundled_apply_token(sim, iface, v);
        } catch (const base::Error&) {
            ++wrong;  // X sampled also counts as a failure
            continue;
        }
        if (out != a + b) ++wrong;
    }
    EXPECT_GT(wrong, 0) << "sabotaged delay should corrupt long-carry sums";
}

TEST(WchbFifo, StreamsTokensInOrder) {
    auto fifo = asynclib::make_wchb_fifo(4, 3);
    Simulator sim(fifo.nl);
    sim.run();
    std::vector<std::uint64_t> tokens{1, 15, 7, 0, 9, 4, 2, 11};
    sim::DrStreamSource src(sim, fifo.in, fifo.ack_in, tokens, 100);
    sim::DrStreamSink sink(sim, fifo.out, fifo.ack_out, 100);
    src.start();
    const auto r = sim.run(50'000'000);
    EXPECT_TRUE(r.quiescent);
    EXPECT_EQ(sink.received(), tokens);
}

TEST(WchbFifo, ProtocolCleanUnderStreaming) {
    auto fifo = asynclib::make_wchb_fifo(2, 4);
    Simulator sim(fifo.nl);
    sim.run();
    sim::DualRailChannelMonitor mon(sim, fifo.out, fifo.ack_out, "fifo.out");
    std::vector<std::uint64_t> tokens;
    for (std::uint64_t i = 0; i < 16; ++i) tokens.push_back(i % 4);
    sim::DrStreamSource src(sim, fifo.in, fifo.ack_in, tokens, 50);
    sim::DrStreamSink sink(sim, fifo.out, fifo.ack_out, 50);
    src.start();
    sim.run(50'000'000);
    EXPECT_EQ(sink.received().size(), tokens.size());
    EXPECT_TRUE(mon.violations().empty())
        << (mon.violations().empty() ? "" : mon.violations()[0].what);
}

TEST(MpFifo, StreamsTokensInOrder) {
    auto fifo = asynclib::make_micropipeline_fifo(4, 3);
    Simulator sim(fifo.nl);
    sim.run();
    std::vector<std::uint64_t> tokens{3, 14, 8, 1, 12};
    sim::BdStreamSource src(sim, fifo.in, fifo.req_in, fifo.ack_in, tokens, 100, 80);
    sim::BdStreamSink sink(sim, fifo.out, fifo.req_out, fifo.ack_out, 100);
    src.start();
    const auto r = sim.run(50'000'000);
    EXPECT_TRUE(r.quiescent);
    EXPECT_EQ(sink.received(), tokens);
}

TEST(MpFifo, DeeperFifoHigherThroughputThanSingleStage) {
    auto measure = [](std::size_t stages) {
        auto fifo = asynclib::make_micropipeline_fifo(4, stages);
        Simulator sim(fifo.nl);
        sim.run();
        std::vector<std::uint64_t> tokens(24, 5);
        sim::BdStreamSource src(sim, fifo.in, fifo.req_in, fifo.ack_in, tokens, 20, 30);
        sim::BdStreamSink sink(sim, fifo.out, fifo.req_out, fifo.ack_out, 20);
        src.start();
        sim.run(500'000'000);
        return sink.times().steady_period_ps();
    };
    const double p1 = measure(1);
    const double p4 = measure(4);
    const double p8 = measure(8);
    EXPECT_GT(p1, 0.0);
    EXPECT_GT(p4, 0.0);
    // A pipeline's steady token period is set by the local handshake cycle,
    // not by depth: 8 stages must not take ~8x the single-stage period.
    EXPECT_LE(p4, p1 * 2.0);
    EXPECT_LE(p8, p4 * 1.25);
}

TEST(Validity, FiresOnValidClearsOnSpacer) {
    Netlist nl;
    const auto ins = asynclib::add_dual_rail_inputs(nl, "x", 1);
    asynclib::MappingHints hints;
    const NetId v = asynclib::add_validity(nl, ins[0], "v", &hints);
    nl.add_output("v", v);
    EXPECT_EQ(hints.validity_nets.size(), 1u);
    Simulator sim(nl);
    sim.run();
    sim.schedule_pi(ins[0].f, Logic::T);
    sim.run();
    EXPECT_EQ(sim.value(v), Logic::T);
    sim.schedule_pi(ins[0].f, Logic::F);
    sim.run();
    EXPECT_EQ(sim.value(v), Logic::F);
}

}  // namespace
