// Staged-pipeline and incremental-engine regressions:
//  - PlaceCostEngine's incremental delta cost matches a from-scratch HPWL
//    recomputation after randomized move sequences (the boundary-count
//    bookkeeping is exact, not approximate);
//  - the placer's incremental and pre-refactor rescan evaluators make
//    bit-identical decisions (same placement, same cost) on a mixed
//    cluster/IO design, which also pins down the stored Entity::io_slot
//    against the old linear-search derivation;
//  - incremental PathFinder rerouting produces legal (no overuse) routings
//    of the same quality class as classic full rip-up;
//  - multi-capacity channels (ArchSpec::wire_capacity) are honoured;
//  - FlowTelemetry reports all five stages with wall times and serializes
//    to JSON.
#include <gtest/gtest.h>

#include <set>

#include "asynclib/adders.hpp"
#include "asynclib/fifos.hpp"
#include "base/check.hpp"
#include "base/json.hpp"
#include "base/rng.hpp"
#include "cad/flow.hpp"
#include "cad/place_cost.hpp"

namespace {

using namespace afpga;
using cad::EntityMove;
using cad::PlaceCostEngine;

TEST(PlaceCostEngine, IncrementalMatchesScratchAfterRandomMoves) {
    base::Rng rng(99);
    // A random hypergraph: 40 entities on a 12x12 grid, 60 nets of 2-7 pins.
    PlaceCostEngine eng;
    std::vector<std::pair<double, double>> pos;
    for (int e = 0; e < 40; ++e) {
        const double x = static_cast<double>(rng.below(12));
        const double y = static_cast<double>(rng.below(12));
        eng.add_entity(x, y);
        pos.emplace_back(x, y);
    }
    for (int n = 0; n < 60; ++n) {
        const std::size_t pins = 2 + rng.below(6);
        std::set<std::size_t> ents;
        while (ents.size() < pins) ents.insert(rng.below(40));
        eng.add_net({ents.begin(), ents.end()});
    }
    eng.finalize();
    EXPECT_DOUBLE_EQ(eng.total_cost(), eng.recompute_from_scratch());

    double running = eng.total_cost();
    for (int step = 0; step < 2000; ++step) {
        // Single moves and swaps, committed or discarded at random.
        EntityMove moves[2];
        const std::size_t n_moves = 1 + rng.below(2);
        moves[0] = {rng.below(40), static_cast<double>(rng.below(12)),
                    static_cast<double>(rng.below(12))};
        if (n_moves == 2) {
            std::size_t e2 = rng.below(40);
            while (e2 == moves[0].entity) e2 = rng.below(40);
            // A swap: the second entity takes the first one's old spot.
            moves[1] = {e2, eng.entity_x(moves[0].entity), eng.entity_y(moves[0].entity)};
        }
        const double delta = eng.eval({moves, n_moves});
        if (rng.chance(0.6)) {
            eng.commit();
            running += delta;
        }
        // Cached boxes stay exact: the running sum may accumulate float dust,
        // but total_cost() (sum of cached boxes) must equal a full rebuild
        // bit-for-bit because every cached box is rebuilt, never drifted.
        ASSERT_DOUBLE_EQ(eng.total_cost(), eng.recompute_from_scratch()) << "step " << step;
    }
    EXPECT_NEAR(running, eng.total_cost(), 1e-6);
}

TEST(PlaceCostEngine, DeltaMatchesRescanDifference) {
    base::Rng rng(5);
    PlaceCostEngine eng;
    for (int e = 0; e < 12; ++e)
        eng.add_entity(static_cast<double>(rng.below(8)), static_cast<double>(rng.below(8)));
    for (int n = 0; n < 20; ++n) {
        std::set<std::size_t> ents;
        while (ents.size() < 3) ents.insert(rng.below(12));
        eng.add_net({ents.begin(), ents.end()});
    }
    eng.finalize();
    for (int step = 0; step < 500; ++step) {
        const EntityMove mv{rng.below(12), static_cast<double>(rng.below(8)),
                            static_cast<double>(rng.below(8))};
        const double before = eng.recompute_from_scratch();
        const double delta = eng.eval({&mv, 1});
        eng.commit();
        const double after = eng.recompute_from_scratch();
        ASSERT_NEAR(after - before, delta, 1e-9) << "step " << step;
    }
}

// The stored Entity::io_slot must agree with the pre-refactor linear-search
// derivation on a design with both clusters and I/O pads: the two evaluators
// are bit-identical, so the whole annealed placement must match exactly.
TEST(PlaceIncremental, MatchesPreRefactorEvaluatorOnMixedDesign) {
    auto adder = asynclib::make_qdi_adder(3);
    const auto md = cad::techmap(adder.nl, adder.hints);
    core::ArchSpec arch;
    const auto pd = cad::pack(md, arch);
    ASSERT_FALSE(pd.clusters.empty());
    ASSERT_FALSE(md.primary_inputs.empty());
    ASSERT_FALSE(md.primary_outputs.empty());

    cad::PlaceOptions inc;
    inc.seed = 31;
    cad::PlaceOptions legacy = inc;
    legacy.incremental = false;
    const auto a = cad::place(pd, md, arch, inc);
    const auto b = cad::place(pd, md, arch, legacy);

    ASSERT_EQ(a.cluster_loc.size(), b.cluster_loc.size());
    for (std::size_t i = 0; i < a.cluster_loc.size(); ++i)
        EXPECT_TRUE(a.cluster_loc[i] == b.cluster_loc[i]) << "cluster " << i;
    EXPECT_EQ(a.pi_pad, b.pi_pad);
    EXPECT_EQ(a.po_pad, b.po_pad);
    EXPECT_DOUBLE_EQ(a.final_cost, b.final_cost);
    EXPECT_EQ(a.moves_tried, b.moves_tried);
    EXPECT_EQ(a.moves_accepted, b.moves_accepted);

    // Pad assignment sanity on the mixed design: all pads distinct, in range.
    core::FabricGeometry geom(arch);
    std::set<std::uint32_t> pads;
    for (const auto& [name, pad] : a.pi_pad) {
        EXPECT_LT(pad, geom.num_pads());
        EXPECT_TRUE(pads.insert(pad).second) << "pad shared: " << name;
    }
    for (const auto& [name, pad] : a.po_pad) {
        EXPECT_LT(pad, geom.num_pads());
        EXPECT_TRUE(pads.insert(pad).second) << "pad shared: " << name;
    }
}

cad::RouteRequest plb_to_plb(core::PlbCoord from, core::PlbCoord to) {
    cad::RouteRequest rq;
    rq.src_plb = from;
    cad::RouteRequest::Sink sk;
    sk.plb = to;
    rq.sinks.push_back(sk);
    return rq;
}

/// Occupancy of every RR node across all route trees.
std::vector<std::uint16_t> occupancy(const core::RRGraph& rr, const cad::RoutingResult& res) {
    std::vector<std::uint16_t> occ(rr.num_nodes(), 0);
    for (const auto& t : res.trees) {
        std::set<std::uint32_t> mine;
        if (t.root_opin != UINT32_MAX) mine.insert(t.root_opin);
        for (std::uint32_t e : t.edges) {
            mine.insert(rr.edge_source(e));
            mine.insert(rr.edge_target(e));
        }
        for (std::uint32_t n : mine) ++occ[n];
    }
    return occ;
}

TEST(RouteIncremental, LegalAndSameQualityClassAsFullRipUp) {
    core::ArchSpec a;
    a.width = 6;
    a.height = 6;
    a.channel_width = 8;
    const core::RRGraph rr(a);
    // A congested all-to-all-ish pattern that needs several iterations.
    std::vector<cad::RouteRequest> reqs;
    for (std::uint32_t i = 0; i < 6; ++i)
        for (std::uint32_t j = 0; j < 6; j += 2)
            if (i != j) reqs.push_back(plb_to_plb({i, 0}, {j, 5}));

    cad::RouterOptions incremental;
    cad::RouterOptions full;
    full.incremental = false;
    const auto ri = cad::route(rr, reqs, incremental);
    const auto rf = cad::route(rr, reqs, full);
    ASSERT_TRUE(ri.success);
    ASSERT_TRUE(rf.success);

    // Legality: no node over capacity in the incremental result.
    const auto occ = occupancy(rr, ri);
    for (std::uint32_t n = 0; n < rr.num_nodes(); ++n)
        EXPECT_LE(occ[n], rr.node_capacity(n)) << "node " << n;

    // Quality class: total wirelength within 1.5x of the full rip-up router.
    EXPECT_GT(ri.wirelength, 0u);
    EXPECT_GT(rf.wirelength, 0u);
    EXPECT_LE(ri.wirelength, rf.wirelength * 3 / 2);
    EXPECT_LE(rf.wirelength, ri.wirelength * 3 / 2);

    // Incremental must not redo everything every iteration.
    if (ri.iterations > 1) {
        EXPECT_LT(ri.nets_rerouted, reqs.size() * static_cast<std::size_t>(ri.iterations));
    }
}

TEST(RouteIncremental, DeterministicAcrossRuns) {
    core::ArchSpec a;
    a.width = 5;
    a.height = 5;
    a.channel_width = 6;
    const core::RRGraph rr(a);
    std::vector<cad::RouteRequest> reqs;
    for (std::uint32_t i = 0; i < 5; ++i) reqs.push_back(plb_to_plb({i, 0}, {4 - i, 4}));
    const auto r1 = cad::route(rr, reqs);
    const auto r2 = cad::route(rr, reqs);
    ASSERT_TRUE(r1.success && r2.success);
    for (std::size_t i = 0; i < reqs.size(); ++i) {
        EXPECT_EQ(r1.trees[i].root_opin, r2.trees[i].root_opin);
        EXPECT_EQ(r1.trees[i].edges, r2.trees[i].edges);
    }
}

TEST(RouteCapacity, MultiCapacityChannelsShareTracks) {
    // 2x1 fabric, 2 tracks: eight parallel nets cannot fit at capacity 1 but
    // route cleanly when each track carries two nets.
    core::ArchSpec narrow;
    narrow.width = 2;
    narrow.height = 1;
    narrow.channel_width = 2;
    narrow.fc_in = 1.0;
    narrow.fc_out = 1.0;
    std::vector<cad::RouteRequest> reqs;
    for (int i = 0; i < 8; ++i) reqs.push_back(plb_to_plb({0, 0}, {1, 0}));
    cad::RouterOptions opts;
    opts.max_iterations = 12;

    const core::RRGraph rr1(narrow);
    const auto res1 = cad::route(rr1, reqs, opts);

    core::ArchSpec wide = narrow;
    wide.wire_capacity = 2;
    const core::RRGraph rr2(wide);
    const auto res2 = cad::route(rr2, reqs, opts);
    ASSERT_TRUE(res2.success);
    const auto occ = occupancy(rr2, res2);
    std::uint16_t max_wire_occ = 0;
    for (std::uint32_t n = 0; n < rr2.num_nodes(); ++n) {
        EXPECT_LE(occ[n], rr2.node_capacity(n)) << "node " << n;
        const auto k = rr2.node(n).kind;
        if (k == core::RRKind::ChanX || k == core::RRKind::ChanY)
            max_wire_occ = std::max(max_wire_occ, occ[n]);
    }
    if (!res1.success) {
        // Capacity 1 could not carry the load, so capacity 2 must actually
        // have shared at least one wire.
        EXPECT_EQ(max_wire_occ, 2);
    }
}

TEST(RouteCapacity, FlowRejectsMultiCapacityChannels) {
    // Bundled wires are a router-level model; the bitstream layer programs
    // one net per wire node, so the flow must refuse rather than short nets.
    auto fifo = asynclib::make_wchb_fifo(2, 2);
    core::ArchSpec a;
    a.wire_capacity = 2;
    EXPECT_THROW((void)cad::run_flow(fifo.nl, fifo.hints, a), base::Error);
}

TEST(FlowTelemetry, ReportsAllFiveStagesAndSerializes) {
    auto fifo = asynclib::make_wchb_fifo(2, 2);
    cad::FlowOptions opts;
    opts.seed = 11;
    const auto fr = cad::run_flow(fifo.nl, fifo.hints, core::ArchSpec{}, opts);

    const char* expected[] = {"techmap", "pack", "place", "route", "bitstream"};
    ASSERT_EQ(fr.telemetry.stages.size(), 5u);
    for (std::size_t i = 0; i < 5; ++i) {
        EXPECT_EQ(fr.telemetry.stages[i].stage, expected[i]);
        EXPECT_GE(fr.telemetry.stages[i].wall_ms, 0.0);
    }
    EXPECT_GE(fr.telemetry.total_ms, 0.0);
    const auto* rt = fr.telemetry.stage("route");
    ASSERT_NE(rt, nullptr);
    EXPECT_EQ(rt->iterations, fr.routing.iterations);
    ASSERT_NE(rt->metric("wirelength"), nullptr);
    EXPECT_EQ(static_cast<std::size_t>(*rt->metric("wirelength")), fr.routing.wirelength);
    const auto* pl = fr.telemetry.stage("place");
    ASSERT_NE(pl, nullptr);
    EXPECT_EQ(pl->iterations, fr.placement.anneal_rounds);
    EXPECT_EQ(pl->cost_trajectory.size(), fr.placement.cost_trajectory.size());

    const std::string json = fr.telemetry.to_json();
    EXPECT_NE(json.find("\"stages\":["), std::string::npos);
    EXPECT_NE(json.find("\"stage\":\"place\""), std::string::npos);
    EXPECT_NE(json.find("\"total_ms\":"), std::string::npos);
    EXPECT_NE(json.find("\"cost_trajectory\":["), std::string::npos);
}

TEST(JsonWriter, EscapesAndNests) {
    base::JsonWriter w;
    w.begin_object();
    w.key("s").value("a\"b\\c\nd");
    w.key("i").value(-3);
    w.key("d").value(1.5);
    w.key("whole").value(42.0);
    w.key("b").value(true);
    w.key("arr").begin_array().value(std::string_view("x")).value(2.25).end_array();
    w.key("raw").raw("{\"k\":1}");
    w.end_object();
    EXPECT_EQ(w.str(),
              "{\"s\":\"a\\\"b\\\\c\\nd\",\"i\":-3,\"d\":1.5,\"whole\":42,"
              "\"b\":true,\"arr\":[\"x\",2.25],\"raw\":{\"k\":1}}");
}

TEST(JsonWriter, RejectsMisuse) {
    base::JsonWriter w;
    w.begin_object();
    EXPECT_THROW(w.value(1.0), base::Error);  // value without key
    EXPECT_THROW(w.end_array(), base::Error);
    w.key("x").value(1.0);
    EXPECT_THROW((void)w.str(), base::Error);  // unclosed object
    w.end_object();
    EXPECT_NO_THROW((void)w.str());
}

}  // namespace
