// Tests of the fabric architecture model: LE bit-exact evaluation, IM
// topology legality, PDE, geometry, RR-graph invariants and bitstream
// serialisation.
#include <gtest/gtest.h>

#include "base/check.hpp"
#include "base/rng.hpp"
#include "core/archspec.hpp"
#include "core/bitstream.hpp"
#include "core/elaborate.hpp"
#include "core/fabric.hpp"
#include "core/le.hpp"
#include "core/plb.hpp"
#include "core/rrgraph.hpp"

namespace {

using namespace afpga;
using core::ArchSpec;
using core::LeConfig;
using core::LeEval;
using core::LeProgram;
using netlist::Logic;
using netlist::TruthTable;

std::array<Logic, 7> inputs_from_mask(std::uint32_t m) {
    std::array<Logic, 7> in{};
    for (std::size_t i = 0; i < 7; ++i) in[i] = netlist::from_bool((m >> i) & 1u);
    return in;
}

TEST(ArchSpec, DefaultsValidate) {
    const ArchSpec a = core::paper_arch();
    EXPECT_NO_THROW(a.validate());
    EXPECT_EQ(a.les_per_plb, 2u);
    EXPECT_EQ(a.le_inputs, 7u);
}

TEST(ArchSpec, ImIndexBlocksAreDisjoint) {
    const ArchSpec a;
    EXPECT_EQ(a.im_src_plb_input(0), 0u);
    EXPECT_EQ(a.im_src_le_output(0, 0), a.plb_inputs);
    EXPECT_EQ(a.im_src_pde_out(), a.plb_inputs + 8);
    EXPECT_EQ(a.im_src_const1(), a.im_num_sources() - 1);
    EXPECT_EQ(a.im_sink_le_input(1, 0), 7u);
    EXPECT_EQ(a.im_sink_plb_output(a.plb_outputs - 1), a.im_num_sinks() - 1);
}

TEST(ArchSpec, ConfigBitBudget) {
    const ArchSpec a;
    // 2 LEs * 136 + 23 sinks * 5 bits + 5 PDE bits (32 taps).
    EXPECT_EQ(a.plb_config_bits(),
              2u * 136u + a.im_num_sinks() * a.im_select_bits() + a.pde_tap_bits());
}

TEST(ArchSpec, FingerprintChangesWithParameters) {
    ArchSpec a;
    ArchSpec b;
    b.channel_width += 2;
    EXPECT_NE(a.fingerprint(), b.fingerprint());
    ArchSpec c;
    c.im_topology = core::ImTopology::Sparse50;
    EXPECT_NE(a.fingerprint(), c.fingerprint());
}

TEST(ArchSpec, ImTopologyNoFeedbackBlocksLeLoops) {
    ArchSpec a;
    a.im_topology = core::ImTopology::NoFeedback;
    const std::uint32_t le_out = a.im_src_le_output(0, 0);
    const std::uint32_t le_in = a.im_sink_le_input(0, 0);
    EXPECT_FALSE(a.im_connects(le_out, le_in));
    EXPECT_TRUE(a.im_connects(le_out, a.im_sink_plb_output(0)));
    EXPECT_TRUE(a.im_connects(a.im_src_const0(), le_in));
}

TEST(LeModel, HalvesAreIndependentLut6) {
    base::Rng rng(31);
    LeConfig cfg;
    const auto fa = TruthTable::from_function(6, [&](std::uint32_t) { return rng.chance(0.5); });
    const auto fb = TruthTable::from_function(6, [&](std::uint32_t) { return rng.chance(0.5); });
    LeProgram::set_half(cfg, false, fa, {0, 1, 2, 3, 4, 5});
    LeProgram::set_half(cfg, true, fb, {0, 1, 2, 3, 4, 5});
    for (std::uint32_t m = 0; m < 128; ++m) {
        const auto out = LeEval::evaluate(cfg, inputs_from_mask(m));
        EXPECT_EQ(out[core::kLeOutA], netlist::from_bool(fa.eval(m & 63)));
        EXPECT_EQ(out[core::kLeOutB], netlist::from_bool(fb.eval(m & 63)));
        // O2 = i6 ? B : A
        const bool i6 = (m >> 6) & 1u;
        EXPECT_EQ(out[core::kLeOutMux7],
                  netlist::from_bool(i6 ? fb.eval(m & 63) : fa.eval(m & 63)));
    }
}

TEST(LeModel, PinMapRemapsVariables) {
    LeConfig cfg;
    const auto xor2 = TruthTable::from_bits(2, 0b0110);
    LeProgram::set_half(cfg, false, xor2, {4, 2});  // var0->pin4, var1->pin2
    for (std::uint32_t m = 0; m < 64; ++m) {
        std::array<Logic, 7> in = inputs_from_mask(m);
        const auto out = LeEval::evaluate(cfg, in);
        const bool expect = (((m >> 4) ^ (m >> 2)) & 1u) != 0;
        EXPECT_EQ(out[core::kLeOutA], netlist::from_bool(expect));
    }
}

TEST(LeModel, Full7ImplementsSevenInputFunction) {
    base::Rng rng(17);
    const auto f7 = TruthTable::from_function(7, [&](std::uint32_t) { return rng.chance(0.5); });
    LeConfig cfg;
    LeProgram::set_full7(cfg, f7, {0, 1, 2, 3, 4, 5, 6});
    for (std::uint32_t m = 0; m < 128; ++m) {
        const auto out = LeEval::evaluate(cfg, inputs_from_mask(m));
        EXPECT_EQ(out[core::kLeOutMux7], netlist::from_bool(f7.eval(m))) << m;
    }
    // output_function must agree
    EXPECT_EQ(LeEval::output_function(cfg, core::kLeOutMux7), f7);
}

TEST(LeModel, Full7SelectVariableCanBeAnyVariable) {
    const auto f7 = TruthTable::from_function(7, [](std::uint32_t m) {
        return ((m & 1) + ((m >> 3) & 1) + ((m >> 6) & 1)) >= 2;
    });
    LeConfig cfg;
    // variable 3 goes to the mux pin (i6); others fill i0..i5 in order.
    LeProgram::set_full7(cfg, f7, {0, 1, 2, 6, 3, 4, 5});
    const auto got = LeEval::output_function(cfg, core::kLeOutMux7);
    // got is over LE pins; f7 var i lives on pin perm[i].
    const auto expect = f7.remap({0, 1, 2, 6, 3, 4, 5}, 7);
    EXPECT_EQ(got, expect);
}

TEST(LeModel, Lut2ComputesValidityOfRailPair) {
    LeConfig cfg;
    // A = x0 (true rail), B = ~x0 (false rail); validity = A | B == 1 always
    // when driven; here just check the OR wiring.
    LeProgram::set_half(cfg, false, TruthTable::identity(1, 0), {0});
    LeProgram::set_half(cfg, true, TruthTable::from_bits(2, 0b0100), {0, 1});  // x1 & ~x0
    LeProgram::set_lut2(cfg, TruthTable::from_bits(2, 0b1110), 0, 1);          // OR
    for (std::uint32_t m = 0; m < 4; ++m) {
        const auto out = LeEval::evaluate(cfg, inputs_from_mask(m));
        const bool a = (m & 1) != 0;
        const bool b = ((m >> 1) & 1) != 0 && !a;
        EXPECT_EQ(out[core::kLeOutLut2], netlist::from_bool(a || b));
    }
}

TEST(LeModel, XPropagatesExactly) {
    LeConfig cfg;
    LeProgram::set_half(cfg, false, TruthTable::from_bits(2, 0b1110), {0, 1});  // OR
    std::array<Logic, 7> in{};
    in.fill(Logic::F);
    in[0] = Logic::T;
    in[1] = Logic::X;
    EXPECT_EQ(LeEval::evaluate(cfg, in)[0], Logic::T);  // OR with controlling 1
    in[0] = Logic::F;
    EXPECT_EQ(LeEval::evaluate(cfg, in)[0], Logic::X);
}

TEST(ImConfig, ConnectAndQuery) {
    const ArchSpec a;
    core::ImConfig im(a);
    im.connect(a, a.im_sink_le_input(0, 3), a.im_src_plb_input(5));
    EXPECT_TRUE(im.sink_used(a.im_sink_le_input(0, 3)));
    EXPECT_FALSE(im.sink_used(a.im_sink_le_input(0, 4)));
    // Re-connecting the same pair is idempotent; a different source throws.
    EXPECT_NO_THROW(im.connect(a, a.im_sink_le_input(0, 3), a.im_src_plb_input(5)));
    EXPECT_THROW(im.connect(a, a.im_sink_le_input(0, 3), a.im_src_plb_input(6)),
                 base::Error);
}

TEST(ImConfig, SparseTopologyRejectsUnpopulatedPoints) {
    ArchSpec a;
    a.im_topology = core::ImTopology::Sparse25;
    core::ImConfig im(a);
    bool rejected = false;
    for (std::uint32_t s = 0; s < a.im_num_sources() && !rejected; ++s) {
        if (!a.im_connects(s, 0)) {
            EXPECT_THROW(im.connect(a, 0, s), base::Error);
            rejected = true;
        }
    }
    EXPECT_TRUE(rejected);
}

TEST(Pde, TapDelay) {
    const ArchSpec a;
    core::PdeConfig pde;
    pde.tap = 5;
    EXPECT_EQ(pde.delay_ps(a), 5 * a.pde_quantum_ps);
}

TEST(Geometry, PlbIndexRoundTrip) {
    const ArchSpec a;
    const core::FabricGeometry g(a);
    for (std::uint32_t i = 0; i < g.num_plbs(); ++i)
        EXPECT_EQ(g.plb_index(g.plb_coord(i)), i);
}

TEST(Geometry, IobIndexRoundTrip) {
    const ArchSpec a;
    const core::FabricGeometry g(a);
    for (std::uint32_t i = 0; i < g.num_iobs(); ++i)
        EXPECT_EQ(g.iob_index(g.iob_coord(i)), i);
}

TEST(Geometry, PadNamesUnique) {
    const ArchSpec a;
    const core::FabricGeometry g(a);
    std::set<std::string> names;
    for (std::uint32_t p = 0; p < g.num_pads(); ++p) names.insert(g.pad_name(p));
    EXPECT_EQ(names.size(), g.num_pads());
}

TEST(RRGraph, NodeCountsMatchFormula) {
    ArchSpec a;
    a.width = 4;
    a.height = 3;
    a.channel_width = 6;
    const core::RRGraph rr(a);
    const std::size_t wires = (std::size_t{4} * (3 + 1) + std::size_t{3} * (4 + 1)) * 6;
    EXPECT_EQ(rr.num_wires(), wires);
    const std::size_t pins = std::size_t{12} * (a.plb_inputs + a.plb_outputs);
    const core::FabricGeometry g(a);
    EXPECT_EQ(rr.num_nodes(), wires + pins + 2 * g.num_pads());
}

TEST(RRGraph, EdgesAreConsistent) {
    ArchSpec a;
    a.width = 3;
    a.height = 3;
    const core::RRGraph rr(a);
    for (std::uint32_t n = 0; n < rr.num_nodes(); ++n) {
        for (std::uint32_t e : rr.out_edges(n)) {
            EXPECT_EQ(rr.edge_source(e), n);
            EXPECT_LT(rr.edge_target(e), rr.num_nodes());
        }
    }
}

TEST(RRGraph, OpinsReachIpinsOfNeighbours) {
    // Sanity: a signal can get from PLB (0,0) out pin 0 to some ipin of (1,0)
    // through enabled wires (pure graph reachability).
    ArchSpec a;
    a.width = 2;
    a.height = 1;
    const core::RRGraph rr(a);
    std::vector<bool> seen(rr.num_nodes(), false);
    std::vector<std::uint32_t> stack{rr.plb_opin({0, 0}, 0)};
    seen[stack[0]] = true;
    bool reached = false;
    while (!stack.empty() && !reached) {
        const std::uint32_t n = stack.back();
        stack.pop_back();
        for (std::uint32_t e : rr.out_edges(n)) {
            const std::uint32_t t = rr.edge_target(e);
            if (seen[t]) continue;
            seen[t] = true;
            const auto& nd = rr.node(t);
            if (nd.kind == core::RRKind::Ipin && !nd.is_pad && nd.x == 1 && nd.y == 0)
                reached = true;
            if (nd.kind != core::RRKind::Ipin) stack.push_back(t);
        }
    }
    EXPECT_TRUE(reached);
}

TEST(RRGraph, WireFanoutIsReasonable) {
    const core::RRGraph rr(ArchSpec{});
    EXPECT_GT(rr.avg_wire_fanout(), 2.0);   // wires must offer turns
    EXPECT_LT(rr.avg_wire_fanout(), 20.0);  // but not be all-to-all
}

TEST(Bitstream, RoundTripIdentity) {
    ArchSpec a;
    a.width = 3;
    a.height = 2;
    const core::RRGraph rr(a);
    core::Bitstream bs(a, rr.num_edges());
    base::Rng rng(5);
    // Randomly program a few things.
    auto& p = bs.plb({1, 1});
    p.le[0].tt_a = rng.next();
    p.le[1].tt_b = rng.next();
    p.im.connect(a, a.im_sink_le_input(0, 0), a.im_src_plb_input(3));
    p.pde.tap = 7;
    bs.set_pad_mode(0, core::PadMode::Input);
    bs.set_pad_mode(5, core::PadMode::Output);
    for (int i = 0; i < 200; ++i)
        bs.set_edge(static_cast<std::uint32_t>(rng.below(rr.num_edges())), true);

    const auto bits = bs.serialize();
    const auto back = core::Bitstream::deserialize(a, bits);
    EXPECT_TRUE(bs == back);
    EXPECT_EQ(back.plb({1, 1}).pde.tap, 7);
    EXPECT_EQ(back.pad_mode(5), core::PadMode::Output);
}

TEST(Bitstream, CrcDetectsCorruption) {
    ArchSpec a;
    a.width = 2;
    a.height = 2;
    const core::RRGraph rr(a);
    core::Bitstream bs(a, rr.num_edges());
    auto bits = bs.serialize();
    bits.flip(200);  // corrupt one body bit
    EXPECT_THROW(core::Bitstream::deserialize(a, bits), base::Error);
}

TEST(Bitstream, FingerprintMismatchRejected) {
    ArchSpec a;
    a.width = 2;
    a.height = 2;
    const core::RRGraph rr(a);
    const auto bits = core::Bitstream(a, rr.num_edges()).serialize();
    ArchSpec other = a;
    other.pde_quantum_ps += 1;
    EXPECT_THROW(core::Bitstream::deserialize(other, bits), base::Error);
}

TEST(Bitstream, OccupancyCountsProgrammedPlbs) {
    ArchSpec a;
    a.width = 2;
    a.height = 2;
    const core::RRGraph rr(a);
    core::Bitstream bs(a, rr.num_edges());
    EXPECT_EQ(bs.occupied_plbs(), 0u);
    bs.plb({0, 1}).le[0].tt_a = 1;
    EXPECT_EQ(bs.occupied_plbs(), 1u);
}

TEST(PlbConfig, SerializedSizeMatchesBudget) {
    const ArchSpec a;
    core::PlbConfig cfg(a);
    base::BitVector bits;
    cfg.serialize(a, bits);
    EXPECT_EQ(bits.size(), a.plb_config_bits());
}

}  // namespace
