// Binary artifact serialization (cad/serialize.hpp): every codec
// round-trips bit-exactly, encoding is independent of unordered-container
// insertion order (the disk tier's content-addressing depends on it), and
// every malformed input throws base::Error instead of crashing or
// over-allocating.
#include <cmath>
#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "base/check.hpp"
#include "cad/serialize.hpp"
#include "core/bitstream.hpp"
#include "core/rrgraph.hpp"

namespace cad = afpga::cad;
namespace core = afpga::core;
namespace base = afpga::base;
using afpga::netlist::NetId;
using afpga::netlist::TruthTable;

namespace {

// ---------------------------------------------------------------------------
// Fixture builders: small synthetic artifacts that exercise every optional
// branch of the encoders.
// ---------------------------------------------------------------------------

NetId nid(std::uint32_t v) { return NetId{v}; }

cad::LeFunc make_func(std::uint32_t out, std::vector<std::uint32_t> ins, bool feedback = false) {
    cad::LeFunc f;
    f.tt = TruthTable::from_function(ins.size(), [](std::uint32_t a) { return (a & 1) != 0; });
    for (const auto i : ins) f.inputs.push_back(nid(i));
    f.output = nid(out);
    f.has_feedback = feedback;
    return f;
}

cad::MappedDesign make_mapped() {
    cad::MappedDesign md;
    {
        cad::LeInst le;  // paired halves + LUT2 slot
        le.a = make_func(10, {1, 2, 3});
        le.b = make_func(11, {1, 4});
        le.lut2 = make_func(12, {10, 11});
        md.les.push_back(std::move(le));
    }
    {
        cad::LeInst le;  // whole-LE 7-input function with feedback
        le.full7 = make_func(20, {1, 2, 3, 4, 5, 6, 20}, /*feedback=*/true);
        md.les.push_back(std::move(le));
    }
    {
        cad::LeInst le;  // half A only
        le.a = make_func(30, {2});
        md.les.push_back(std::move(le));
    }
    md.pdes.push_back({nid(10), nid(40), 1250});
    md.constant_signals[nid(50)] = true;
    md.constant_signals[nid(51)] = false;
    md.canonical[nid(60)] = nid(1);
    md.canonical[nid(61)] = nid(2);
    md.primary_inputs = {{"clk_req", nid(1)}, {"d", nid(2)}};
    md.primary_outputs = {{"q", nid(20)}, {"ack", nid(30)}};
    return md;
}

cad::PackedDesign make_packed() {
    cad::PackedDesign pd;
    cad::Cluster c0;
    c0.le_indices = {0, 1};
    c0.pde_index = 0;
    cad::Cluster c1;
    c1.le_indices = {2};
    pd.clusters = {std::move(c0), std::move(c1)};
    pd.cluster_of_le = {0, 0, 1};
    pd.cluster_of_pde = {0};
    return pd;
}

cad::Placement make_placement() {
    cad::Placement pl;
    pl.cluster_loc = {{1, 2}, {3, 4}};
    pl.pi_pad = {{"clk_req", 0}, {"d", 1}};
    pl.po_pad = {{"q", 5}, {"ack", 6}};
    pl.final_cost = 12.5;
    pl.moves_tried = 1000;
    pl.moves_accepted = 420;
    pl.anneal_rounds = 7;
    pl.cost_trajectory = {30.0, 20.0, 12.5};
    cad::PlaceReplica r0;
    r0.seed = 99;
    r0.final_cost = 13.0;
    r0.wall_ms = 1.5;
    r0.cost_trajectory = {31.0, 13.0};
    cad::PlaceReplica r1;
    r1.seed = 100;
    r1.final_cost = 12.5;
    r1.wall_ms = 1.25;
    r1.cost_trajectory = {29.0, 12.5};
    r1.engine = cad::PlaceEngine::Analytical;
    pl.replicas = {r0, r1};
    pl.winner_replica = 1;
    pl.engine = cad::PlaceEngine::Multilevel;
    pl.analytical.solver_iterations = 321;
    pl.analytical.solver_passes = 9;
    pl.analytical.spread_passes = 8;
    pl.analytical.pre_legal_cost = 10.25;
    pl.analytical.legalized_cost = 14.75;
    pl.analytical.legalize.displacement_histogram[0] = 1;
    pl.analytical.legalize.displacement_histogram[3] = 2;
    pl.analytical.legalize.total_displacement = 6;
    pl.analytical.legalize.max_displacement = 3;
    pl.analytical.legalize.avg_displacement = 2.0;
    cad::LevelStats l0;
    l0.nodes = 12;
    l0.nets = 30;
    l0.solver_passes = 8;
    l0.spread_passes = 8;
    l0.solver_iterations = 200;
    l0.wall_ms = 0.75;
    cad::LevelStats l1;
    l1.nodes = 48;
    l1.nets = 90;
    l1.solver_passes = 1;
    l1.spread_passes = 1;
    l1.solver_iterations = 40;
    l1.wall_ms = 0.5;
    pl.analytical.levels = {l0, l1};
    return pl;
}

cad::RouteArtifact make_route() {
    cad::RouteArtifact ra;
    cad::RouteTree t0;
    t0.root_opin = 17;
    t0.edges = {3, 5, 8};
    t0.sinks = {{21, 340}, {UINT32_MAX, 0}};
    cad::RouteTree t1;
    t1.root_opin = 40;
    t1.sinks = {{41, 120}};
    ra.routing.trees = {std::move(t0), std::move(t1)};
    ra.routing.iterations = 4;
    ra.routing.success = true;
    ra.routing.overused_nodes = 0;
    ra.routing.overuse_report = {"node 7: cap 1 use 2"};
    ra.routing.overuse_trajectory = {9, 3, 1, 0};
    ra.routing.nets_rerouted = 12;
    ra.routing.wirelength = 34;
    ra.routing.num_bins = 4;
    ra.routing.boundary_nets = 2;
    ra.routing.bin_wall_ms = {0.5, 0.25, 0.75, 0.125};
    ra.routing.boundary_wall_ms = 0.0625;
    ra.routing.kernel.heap_pushes = 1234;
    ra.routing.kernel.heap_pops = 1100;
    ra.routing.kernel.nodes_expanded = 900;
    ra.routing.kernel.edges_scanned = 5400;
    ra.routing.kernel.wavefront_peak = 77;
    ra.routing.kernel.allocations = 6;
    ra.routing.kernel.steady_allocations = 0;
    ra.routing.kernel.nets_routed = 15;
    ra.routing.kernel.search_ms = 1.5;

    cad::RouteRequest q0;
    q0.signal = nid(7);
    q0.src_is_pad = true;
    q0.src_pad = 2;
    q0.sinks.push_back({false, 0, {1, 1}});
    cad::RouteRequest q1;
    q1.signal = nid(8);
    q1.src_plb = {2, 3};
    q1.allowed_src_pins = {0, 3};
    q1.sinks.push_back({true, 5, {}});
    q1.sinks.push_back({false, 0, {4, 4}});
    ra.reqs = {std::move(q0), std::move(q1)};
    ra.sink_cluster = {{0}, {SIZE_MAX, 1}};
    ra.req_signal = {nid(7), nid(8)};
    return ra;
}

void expect_func_eq(const cad::LeFunc& a, const cad::LeFunc& b) {
    ASSERT_EQ(a.tt.arity(), b.tt.arity());
    for (std::uint32_t row = 0; row < a.tt.rows(); ++row)
        EXPECT_EQ(a.tt.eval(row), b.tt.eval(row)) << "row " << row;
    EXPECT_EQ(a.inputs, b.inputs);
    EXPECT_EQ(a.output, b.output);
    EXPECT_EQ(a.has_feedback, b.has_feedback);
}

void expect_opt_func_eq(const std::optional<cad::LeFunc>& a, const std::optional<cad::LeFunc>& b) {
    ASSERT_EQ(a.has_value(), b.has_value());
    if (a) expect_func_eq(*a, *b);
}

}  // namespace

// ---------------------------------------------------------------------------
// Primitives
// ---------------------------------------------------------------------------

TEST(BlobIo, PrimitivesRoundtrip) {
    cad::BlobWriter w;
    w.u8(0xAB);
    w.u32(0xDEADBEEF);
    w.u64(0x0123456789ABCDEFULL);
    w.i64(-42);
    w.f64(3.25);
    w.f64(std::numeric_limits<double>::quiet_NaN());
    w.boolean(true);
    w.boolean(false);
    w.str("hello");
    w.str("");

    cad::BlobReader r(w.bytes());
    EXPECT_EQ(r.u8(), 0xAB);
    EXPECT_EQ(r.u32(), 0xDEADBEEFu);
    EXPECT_EQ(r.u64(), 0x0123456789ABCDEFULL);
    EXPECT_EQ(r.i64(), -42);
    EXPECT_EQ(r.f64(), 3.25);
    EXPECT_TRUE(std::isnan(r.f64()));  // NaN bit pattern survives
    EXPECT_TRUE(r.boolean());
    EXPECT_FALSE(r.boolean());
    EXPECT_EQ(r.str(), "hello");
    EXPECT_EQ(r.str(), "");
    EXPECT_NO_THROW(r.expect_end());
}

TEST(BlobIo, OverrunTrailingAndBadBooleanThrow) {
    cad::BlobWriter w;
    w.u32(7);
    {
        cad::BlobReader r(w.bytes());
        (void)r.u32();
        EXPECT_THROW((void)r.u8(), base::Error);  // overrun
    }
    {
        cad::BlobReader r(w.bytes());
        (void)r.u8();
        EXPECT_THROW(r.expect_end(), base::Error);  // trailing bytes
    }
    {
        cad::BlobWriter bad;
        bad.u8(2);  // booleans must be 0/1
        cad::BlobReader r(bad.bytes());
        EXPECT_THROW((void)r.boolean(), base::Error);
    }
    {
        cad::BlobWriter lie;
        lie.u64(1000);  // string length far beyond the payload
        cad::BlobReader r(lie.bytes());
        EXPECT_THROW((void)r.str(), base::Error);
    }
}

// ---------------------------------------------------------------------------
// Codec roundtrips
// ---------------------------------------------------------------------------

TEST(SerializeCodec, MappedDesignRoundtrip) {
    const cad::MappedDesign md = make_mapped();
    const auto blob = cad::ArtifactCodec<cad::MappedDesign>::encode_blob(md);
    const cad::MappedDesign back = cad::ArtifactCodec<cad::MappedDesign>::decode_blob(blob);

    ASSERT_EQ(back.les.size(), md.les.size());
    for (std::size_t i = 0; i < md.les.size(); ++i) {
        expect_opt_func_eq(back.les[i].a, md.les[i].a);
        expect_opt_func_eq(back.les[i].b, md.les[i].b);
        expect_opt_func_eq(back.les[i].full7, md.les[i].full7);
        expect_opt_func_eq(back.les[i].lut2, md.les[i].lut2);
    }
    ASSERT_EQ(back.pdes.size(), md.pdes.size());
    EXPECT_EQ(back.pdes[0].input, md.pdes[0].input);
    EXPECT_EQ(back.pdes[0].output, md.pdes[0].output);
    EXPECT_EQ(back.pdes[0].required_delay_ps, md.pdes[0].required_delay_ps);
    EXPECT_EQ(back.constant_signals, md.constant_signals);
    EXPECT_EQ(back.canonical, md.canonical);
    EXPECT_EQ(back.primary_inputs, md.primary_inputs);
    EXPECT_EQ(back.primary_outputs, md.primary_outputs);
}

TEST(SerializeCodec, PackedDesignRoundtrip) {
    const cad::PackedDesign pd = make_packed();
    const auto blob = cad::ArtifactCodec<cad::PackedDesign>::encode_blob(pd);
    const cad::PackedDesign back = cad::ArtifactCodec<cad::PackedDesign>::decode_blob(blob);

    ASSERT_EQ(back.clusters.size(), pd.clusters.size());
    for (std::size_t i = 0; i < pd.clusters.size(); ++i) {
        EXPECT_EQ(back.clusters[i].le_indices, pd.clusters[i].le_indices);
        EXPECT_EQ(back.clusters[i].pde_index, pd.clusters[i].pde_index);
    }
    EXPECT_EQ(back.cluster_of_le, pd.cluster_of_le);
    EXPECT_EQ(back.cluster_of_pde, pd.cluster_of_pde);
}

TEST(SerializeCodec, PlacementRoundtrip) {
    const cad::Placement pl = make_placement();
    const auto blob = cad::ArtifactCodec<cad::Placement>::encode_blob(pl);
    const cad::Placement back = cad::ArtifactCodec<cad::Placement>::decode_blob(blob);

    ASSERT_EQ(back.cluster_loc.size(), pl.cluster_loc.size());
    for (std::size_t i = 0; i < pl.cluster_loc.size(); ++i) {
        EXPECT_EQ(back.cluster_loc[i].x, pl.cluster_loc[i].x);
        EXPECT_EQ(back.cluster_loc[i].y, pl.cluster_loc[i].y);
    }
    EXPECT_EQ(back.pi_pad, pl.pi_pad);
    EXPECT_EQ(back.po_pad, pl.po_pad);
    EXPECT_EQ(back.final_cost, pl.final_cost);
    EXPECT_EQ(back.moves_tried, pl.moves_tried);
    EXPECT_EQ(back.moves_accepted, pl.moves_accepted);
    EXPECT_EQ(back.anneal_rounds, pl.anneal_rounds);
    EXPECT_EQ(back.cost_trajectory, pl.cost_trajectory);
    ASSERT_EQ(back.replicas.size(), pl.replicas.size());
    for (std::size_t i = 0; i < pl.replicas.size(); ++i) {
        EXPECT_EQ(back.replicas[i].seed, pl.replicas[i].seed);
        EXPECT_EQ(back.replicas[i].final_cost, pl.replicas[i].final_cost);
        EXPECT_EQ(back.replicas[i].wall_ms, pl.replicas[i].wall_ms);
        EXPECT_EQ(back.replicas[i].cost_trajectory, pl.replicas[i].cost_trajectory);
        EXPECT_EQ(back.replicas[i].engine, pl.replicas[i].engine);
    }
    EXPECT_EQ(back.winner_replica, pl.winner_replica);
    EXPECT_EQ(back.engine, pl.engine);
    EXPECT_EQ(back.analytical.solver_iterations, pl.analytical.solver_iterations);
    EXPECT_EQ(back.analytical.solver_passes, pl.analytical.solver_passes);
    EXPECT_EQ(back.analytical.spread_passes, pl.analytical.spread_passes);
    EXPECT_EQ(back.analytical.pre_legal_cost, pl.analytical.pre_legal_cost);
    EXPECT_EQ(back.analytical.legalized_cost, pl.analytical.legalized_cost);
    EXPECT_EQ(back.analytical.legalize.displacement_histogram,
              pl.analytical.legalize.displacement_histogram);
    EXPECT_EQ(back.analytical.legalize.total_displacement,
              pl.analytical.legalize.total_displacement);
    EXPECT_EQ(back.analytical.legalize.max_displacement,
              pl.analytical.legalize.max_displacement);
    EXPECT_EQ(back.analytical.legalize.avg_displacement,
              pl.analytical.legalize.avg_displacement);
    ASSERT_EQ(back.analytical.levels.size(), pl.analytical.levels.size());
    for (std::size_t i = 0; i < pl.analytical.levels.size(); ++i) {
        const cad::LevelStats& a = back.analytical.levels[i];
        const cad::LevelStats& b = pl.analytical.levels[i];
        EXPECT_EQ(a.nodes, b.nodes) << "level " << i;
        EXPECT_EQ(a.nets, b.nets) << "level " << i;
        EXPECT_EQ(a.solver_passes, b.solver_passes) << "level " << i;
        EXPECT_EQ(a.spread_passes, b.spread_passes) << "level " << i;
        EXPECT_EQ(a.solver_iterations, b.solver_iterations) << "level " << i;
        EXPECT_EQ(a.wall_ms, b.wall_ms) << "level " << i;
    }
}

TEST(SerializeCodec, RouteArtifactRoundtrip) {
    const cad::RouteArtifact ra = make_route();
    const auto blob = cad::ArtifactCodec<cad::RouteArtifact>::encode_blob(ra);
    const cad::RouteArtifact back = cad::ArtifactCodec<cad::RouteArtifact>::decode_blob(blob);

    const cad::RoutingResult& a = ra.routing;
    const cad::RoutingResult& b = back.routing;
    ASSERT_EQ(b.trees.size(), a.trees.size());
    for (std::size_t i = 0; i < a.trees.size(); ++i) {
        EXPECT_EQ(b.trees[i].root_opin, a.trees[i].root_opin);
        EXPECT_EQ(b.trees[i].edges, a.trees[i].edges);
        ASSERT_EQ(b.trees[i].sinks.size(), a.trees[i].sinks.size());
        for (std::size_t j = 0; j < a.trees[i].sinks.size(); ++j) {
            EXPECT_EQ(b.trees[i].sinks[j].ipin, a.trees[i].sinks[j].ipin);
            EXPECT_EQ(b.trees[i].sinks[j].delay_ps, a.trees[i].sinks[j].delay_ps);
        }
    }
    EXPECT_EQ(b.iterations, a.iterations);
    EXPECT_EQ(b.success, a.success);
    EXPECT_EQ(b.overused_nodes, a.overused_nodes);
    EXPECT_EQ(b.overuse_report, a.overuse_report);
    EXPECT_EQ(b.overuse_trajectory, a.overuse_trajectory);
    EXPECT_EQ(b.nets_rerouted, a.nets_rerouted);
    EXPECT_EQ(b.wirelength, a.wirelength);
    EXPECT_EQ(b.num_bins, a.num_bins);
    EXPECT_EQ(b.boundary_nets, a.boundary_nets);
    EXPECT_EQ(b.bin_wall_ms, a.bin_wall_ms);
    EXPECT_EQ(b.boundary_wall_ms, a.boundary_wall_ms);
    EXPECT_EQ(b.kernel.heap_pushes, a.kernel.heap_pushes);
    EXPECT_EQ(b.kernel.heap_pops, a.kernel.heap_pops);
    EXPECT_EQ(b.kernel.nodes_expanded, a.kernel.nodes_expanded);
    EXPECT_EQ(b.kernel.edges_scanned, a.kernel.edges_scanned);
    EXPECT_EQ(b.kernel.wavefront_peak, a.kernel.wavefront_peak);
    EXPECT_EQ(b.kernel.allocations, a.kernel.allocations);
    EXPECT_EQ(b.kernel.steady_allocations, a.kernel.steady_allocations);
    EXPECT_EQ(b.kernel.nets_routed, a.kernel.nets_routed);
    EXPECT_EQ(b.kernel.search_ms, a.kernel.search_ms);

    ASSERT_EQ(back.reqs.size(), ra.reqs.size());
    for (std::size_t i = 0; i < ra.reqs.size(); ++i) {
        EXPECT_EQ(back.reqs[i].signal, ra.reqs[i].signal);
        EXPECT_EQ(back.reqs[i].src_is_pad, ra.reqs[i].src_is_pad);
        EXPECT_EQ(back.reqs[i].src_pad, ra.reqs[i].src_pad);
        EXPECT_EQ(back.reqs[i].src_plb.x, ra.reqs[i].src_plb.x);
        EXPECT_EQ(back.reqs[i].src_plb.y, ra.reqs[i].src_plb.y);
        EXPECT_EQ(back.reqs[i].allowed_src_pins, ra.reqs[i].allowed_src_pins);
        ASSERT_EQ(back.reqs[i].sinks.size(), ra.reqs[i].sinks.size());
        for (std::size_t j = 0; j < ra.reqs[i].sinks.size(); ++j) {
            EXPECT_EQ(back.reqs[i].sinks[j].is_pad, ra.reqs[i].sinks[j].is_pad);
            EXPECT_EQ(back.reqs[i].sinks[j].pad, ra.reqs[i].sinks[j].pad);
            EXPECT_EQ(back.reqs[i].sinks[j].plb.x, ra.reqs[i].sinks[j].plb.x);
            EXPECT_EQ(back.reqs[i].sinks[j].plb.y, ra.reqs[i].sinks[j].plb.y);
        }
    }
    EXPECT_EQ(back.sink_cluster, ra.sink_cluster);
    EXPECT_EQ(back.req_signal, ra.req_signal);
}

TEST(SerializeCodec, BitstreamArtifactRoundtrip) {
    const core::ArchSpec arch;  // paper defaults
    const core::RRGraph rr(arch);
    core::Bitstream bits(arch, rr.num_edges());
    bits.set_pad_mode(0, core::PadMode::Input);
    bits.set_pad_mode(3, core::PadMode::Output);
    bits.set_edge(1, true);
    bits.set_edge(rr.num_edges() - 1, true);
    core::PlbConfig& plb = bits.plb({1, 1});
    plb.im.connect(arch, /*sink=*/0, /*source=*/arch.im_src_const1());
    plb.pde.tap = 5;

    cad::BitstreamArtifact ba{std::move(bits), {{0, "req_in"}, {3, "ack_out"}}};
    const auto blob = cad::ArtifactCodec<cad::BitstreamArtifact>::encode_blob(ba);
    const cad::BitstreamArtifact back =
        cad::ArtifactCodec<cad::BitstreamArtifact>::decode_blob(blob);

    EXPECT_TRUE(back.bits == ba.bits);  // PLBs + pads + edges, bit for bit
    EXPECT_EQ(back.pad_names, ba.pad_names);
    EXPECT_EQ(back.bits.pad_mode(3), core::PadMode::Output);
    EXPECT_EQ(back.bits.plb({1, 1}).pde.tap, 5);
}

// ---------------------------------------------------------------------------
// Determinism: content-addressing requires equal values -> equal bytes
// ---------------------------------------------------------------------------

TEST(SerializeDeterminism, MappedDesignIgnoresMapInsertionOrder) {
    cad::MappedDesign a = make_mapped();
    cad::MappedDesign b = make_mapped();
    // Rebuild b's unordered maps in reverse insertion order.
    b.constant_signals.clear();
    b.constant_signals[nid(51)] = false;
    b.constant_signals[nid(50)] = true;
    b.canonical.clear();
    b.canonical[nid(61)] = nid(2);
    b.canonical[nid(60)] = nid(1);
    EXPECT_EQ(cad::ArtifactCodec<cad::MappedDesign>::encode_blob(a),
              cad::ArtifactCodec<cad::MappedDesign>::encode_blob(b));
}

TEST(SerializeDeterminism, PlacementIgnoresMapInsertionOrder) {
    cad::Placement a = make_placement();
    cad::Placement b = make_placement();
    b.pi_pad.clear();
    b.pi_pad["d"] = 1;
    b.pi_pad["clk_req"] = 0;
    b.po_pad.clear();
    b.po_pad["ack"] = 6;
    b.po_pad["q"] = 5;
    EXPECT_EQ(cad::ArtifactCodec<cad::Placement>::encode_blob(a),
              cad::ArtifactCodec<cad::Placement>::encode_blob(b));
}

TEST(SerializeDeterminism, EncodeIsRepeatable) {
    const cad::RouteArtifact ra = make_route();
    EXPECT_EQ(cad::ArtifactCodec<cad::RouteArtifact>::encode_blob(ra),
              cad::ArtifactCodec<cad::RouteArtifact>::encode_blob(ra));
}

// ---------------------------------------------------------------------------
// Malformed blobs: every failure is a thrown base::Error, never a crash
// ---------------------------------------------------------------------------

TEST(SerializeRobustness, TruncationAtEveryPrefixThrows) {
    const struct {
        const char* what;
        std::vector<std::uint8_t> blob;
    } cases[] = {
        {"mapped", cad::ArtifactCodec<cad::MappedDesign>::encode_blob(make_mapped())},
        {"packed", cad::ArtifactCodec<cad::PackedDesign>::encode_blob(make_packed())},
        {"placement", cad::ArtifactCodec<cad::Placement>::encode_blob(make_placement())},
        {"route", cad::ArtifactCodec<cad::RouteArtifact>::encode_blob(make_route())},
    };
    for (const auto& c : cases) {
        for (std::size_t len = 0; len < c.blob.size(); ++len) {
            const std::vector<std::uint8_t> prefix(c.blob.begin(),
                                                   c.blob.begin() + static_cast<long>(len));
            try {
                if (c.what == std::string("mapped"))
                    (void)cad::ArtifactCodec<cad::MappedDesign>::decode_blob(prefix);
                else if (c.what == std::string("packed"))
                    (void)cad::ArtifactCodec<cad::PackedDesign>::decode_blob(prefix);
                else if (c.what == std::string("placement"))
                    (void)cad::ArtifactCodec<cad::Placement>::decode_blob(prefix);
                else
                    (void)cad::ArtifactCodec<cad::RouteArtifact>::decode_blob(prefix);
                FAIL() << c.what << " decoded a " << len << "-byte prefix";
            } catch (const base::Error&) {
                // expected: truncation always surfaces as base::Error
            }
        }
    }
}

TEST(SerializeRobustness, CorruptCountFailsBeforeAllocating) {
    // A blob whose leading element count claims ~2^61 LEs must be rejected
    // by the count-vs-remaining check, not die attempting the reserve.
    cad::BlobWriter w;
    w.u64(0x2000000000000000ULL);
    EXPECT_THROW((void)cad::ArtifactCodec<cad::MappedDesign>::decode_blob(w.bytes()),
                 base::Error);
}

TEST(SerializeRobustness, DecodeArchRejectsGarbage) {
    const core::ArchSpec arch;
    {
        cad::BlobWriter w;
        cad::encode_arch(arch, w);
        std::vector<std::uint8_t> bytes = w.bytes();
        bytes[48] = 0xFF;  // the ImTopology byte: out of enum range
        cad::BlobReader r(bytes);
        EXPECT_THROW((void)cad::decode_arch(r), base::Error);
    }
    {
        core::ArchSpec bad = arch;
        bad.channel_width = 0;  // encodes fine; decode re-validates
        cad::BlobWriter w;
        cad::encode_arch(bad, w);
        cad::BlobReader r(w.bytes());
        EXPECT_THROW((void)cad::decode_arch(r), base::Error);
    }
}

TEST(SerializeRobustness, BitstreamBlobWithFlippedBodyBitFailsCrc) {
    const core::ArchSpec arch;
    const core::RRGraph rr(arch);
    core::Bitstream bits(arch, rr.num_edges());
    bits.set_pad_mode(0, core::PadMode::Input);
    const cad::BitstreamArtifact ba{std::move(bits), {}};
    std::vector<std::uint8_t> blob = cad::ArtifactCodec<cad::BitstreamArtifact>::encode_blob(ba);
    // Flip a bit in the middle of the serialized bitstream body: the
    // embedded CRC check must reject it.
    blob[blob.size() / 2] ^= 0x01;
    EXPECT_THROW((void)cad::ArtifactCodec<cad::BitstreamArtifact>::decode_blob(blob),
                 base::Error);
}
