// Deterministic-RNG regression: the CAD flow must be a pure function of
// (netlist, architecture, options) — two runs with the same seed have to
// agree on every placement location, pad assignment, routed wire and
// bitstream bit. Placer/router changes that accidentally read unseeded
// state (iteration order of a hash map, wall clock, ...) fail here first.
#include <gtest/gtest.h>

#include "asynclib/adders.hpp"
#include "asynclib/fifos.hpp"
#include "cad/flow.hpp"
#include "support/flow_fixtures.hpp"

namespace {

using namespace afpga;

void expect_identical_flow_decisions(const cad::FlowResult& a, const cad::FlowResult& b) {
    // Placement: cluster-by-cluster locations and both pad maps.
    ASSERT_EQ(a.placement.cluster_loc.size(), b.placement.cluster_loc.size());
    for (std::size_t i = 0; i < a.placement.cluster_loc.size(); ++i)
        EXPECT_TRUE(a.placement.cluster_loc[i] == b.placement.cluster_loc[i]) << "cluster " << i;
    EXPECT_EQ(a.placement.pi_pad, b.placement.pi_pad);
    EXPECT_EQ(a.placement.po_pad, b.placement.po_pad);

    // Routing: same source pin, same wire set, same sink pins and delays.
    ASSERT_EQ(a.routing.trees.size(), b.routing.trees.size());
    for (std::size_t i = 0; i < a.routing.trees.size(); ++i) {
        const auto& ta = a.routing.trees[i];
        const auto& tb = b.routing.trees[i];
        EXPECT_EQ(ta.root_opin, tb.root_opin) << "net " << i;
        EXPECT_EQ(ta.edges, tb.edges) << "net " << i;
        ASSERT_EQ(ta.sinks.size(), tb.sinks.size()) << "net " << i;
        for (std::size_t s = 0; s < ta.sinks.size(); ++s) {
            EXPECT_EQ(ta.sinks[s].ipin, tb.sinks[s].ipin) << "net " << i << " sink " << s;
            EXPECT_EQ(ta.sinks[s].delay_ps, tb.sinks[s].delay_ps) << "net " << i << " sink " << s;
        }
    }

    // And therefore the bitstream.
    EXPECT_TRUE(a.bits->serialize() == b.bits->serialize());
}

TEST(Determinism, QdiAdderFlowSameSeedSameResult) {
    auto adder = asynclib::make_qdi_adder(2);
    cad::FlowOptions opts;
    opts.seed = 424242;
    const auto a = cad::run_flow(adder.nl, adder.hints, core::ArchSpec{}, opts);
    const auto b = cad::run_flow(adder.nl, adder.hints, core::ArchSpec{}, opts);
    expect_identical_flow_decisions(a, b);
    EXPECT_EQ(testsupport::flow_fingerprint(a), testsupport::flow_fingerprint(b));
}

TEST(Determinism, WchbFifoFlowSameSeedSameResult) {
    auto fifo = asynclib::make_wchb_fifo(2, 2);
    cad::FlowOptions opts;
    opts.seed = 7;
    const auto a = cad::run_flow(fifo.nl, fifo.hints, core::ArchSpec{}, opts);
    const auto b = cad::run_flow(fifo.nl, fifo.hints, core::ArchSpec{}, opts);
    expect_identical_flow_decisions(a, b);
}

// --- cross-thread-count matrix ----------------------------------------------
// RouterOptions::threads >= 1 switches the flow to the partitioned parallel
// PathFinder (and the pool-built RR graph). The whole point of its design is
// that the worker count is a pure wall-clock knob: every thread count must
// produce the same bitstream, bit for bit.

void expect_thread_matrix_identical(const netlist::Netlist& nl,
                                    const asynclib::MappingHints& hints,
                                    const core::ArchSpec& arch, cad::FlowOptions opts) {
    std::string ref_fp;
    base::BitVector ref_bits;
    for (unsigned t : {1u, 2u, 4u, 8u}) {
        opts.route.threads = t;
        const auto fr = cad::run_flow(nl, hints, arch, opts);
        const std::string fp = testsupport::flow_fingerprint(fr);
        const base::BitVector bits = fr.bits->serialize();
        if (t == 1) {
            ref_fp = fp;
            ref_bits = bits;
            continue;
        }
        EXPECT_EQ(ref_fp, fp) << t << " threads changed the flow fingerprint";
        EXPECT_TRUE(ref_bits == bits) << t << " threads changed the bitstream";
    }
}

TEST(Determinism, QdiAdderBitstreamInvariantAcrossRouteThreads) {
    auto adder = asynclib::make_qdi_adder(2);
    cad::FlowOptions opts;
    opts.seed = 424242;
    // min_bin_dim=3 splits the default 8x8 fabric so the matrix exercises
    // real concurrent bins, not the single-bin degenerate case.
    opts.route.min_bin_dim = 3;
    expect_thread_matrix_identical(adder.nl, adder.hints, core::ArchSpec{}, opts);
}

TEST(Determinism, WchbFifoBitstreamInvariantAcrossRouteThreads) {
    auto fifo = asynclib::make_wchb_fifo(2, 2);
    cad::FlowOptions opts;
    opts.seed = 7;
    opts.route.min_bin_dim = 3;
    expect_thread_matrix_identical(fifo.nl, fifo.hints, core::ArchSpec{}, opts);
}

TEST(Determinism, LargerFabricBitstreamInvariantAcrossRouteThreads) {
    // A 13x13 fabric partitions into four quadrants even at the default
    // min_bin_dim, giving the matrix genuine multi-bin parallel routing.
    auto adder = asynclib::make_qdi_adder(4);
    core::ArchSpec arch;
    arch.width = arch.height = 13;
    arch.channel_width = 12;
    cad::FlowOptions opts;
    opts.seed = 99;
    expect_thread_matrix_identical(adder.nl, adder.hints, arch, opts);
}

// --- placement algorithm x thread-count matrix ------------------------------
// The analytical and multilevel engines are serial by construction, and the
// race layers them on top of the multi-seed anneal pool — in every case
// PlaceOptions::threads must stay a pure wall-clock knob: every pool size has
// to produce the same winner, the same placement and therefore the same
// bitstream, bit for bit.

void expect_place_thread_matrix_identical(const netlist::Netlist& nl,
                                          const asynclib::MappingHints& hints,
                                          const core::ArchSpec& arch,
                                          cad::FlowOptions opts,
                                          cad::PlaceAlgorithm algorithm) {
    opts.place.algorithm = algorithm;
    std::string ref_fp;
    base::BitVector ref_bits;
    for (unsigned t : {1u, 2u, 4u, 8u}) {
        opts.place.threads = t;
        const auto fr = cad::run_flow(nl, hints, arch, opts);
        const std::string fp = testsupport::flow_fingerprint(fr);
        const base::BitVector bits = fr.bits->serialize();
        if (t == 1) {
            ref_fp = fp;
            ref_bits = bits;
            continue;
        }
        EXPECT_EQ(ref_fp, fp) << t << " place threads changed the flow fingerprint";
        EXPECT_TRUE(ref_bits == bits) << t << " place threads changed the bitstream";
    }
}

void expect_both_algorithms_thread_invariant(const netlist::Netlist& nl,
                                             const asynclib::MappingHints& hints,
                                             const core::ArchSpec& arch,
                                             cad::FlowOptions opts) {
    expect_place_thread_matrix_identical(nl, hints, arch, opts,
                                         cad::PlaceAlgorithm::Analytical);
    // A tiny min_coarse_nodes forces real coarsening levels even on the
    // small fixture designs, so the matrix exercises a genuine V-cycle.
    opts.place.min_coarse_nodes = 4;
    expect_place_thread_matrix_identical(nl, hints, arch, opts,
                                         cad::PlaceAlgorithm::Multilevel);
    // Give the race real annealing replicas to schedule around the two
    // extra analytical-family ones.
    opts.place.parallel_seeds = 3;
    expect_place_thread_matrix_identical(nl, hints, arch, opts, cad::PlaceAlgorithm::Race);
}

TEST(Determinism, QdiAdderInvariantAcrossPlaceAlgorithmAndThreads) {
    auto adder = asynclib::make_qdi_adder(2);
    cad::FlowOptions opts;
    opts.seed = 424242;
    expect_both_algorithms_thread_invariant(adder.nl, adder.hints, core::ArchSpec{}, opts);
}

TEST(Determinism, WchbFifoInvariantAcrossPlaceAlgorithmAndThreads) {
    auto fifo = asynclib::make_wchb_fifo(2, 2);
    cad::FlowOptions opts;
    opts.seed = 7;
    expect_both_algorithms_thread_invariant(fifo.nl, fifo.hints, core::ArchSpec{}, opts);
}

TEST(Determinism, LargerFabricInvariantAcrossPlaceAlgorithmAndThreads) {
    auto adder = asynclib::make_qdi_adder(4);
    core::ArchSpec arch;
    arch.width = arch.height = 13;
    arch.channel_width = 12;
    cad::FlowOptions opts;
    opts.seed = 99;
    expect_both_algorithms_thread_invariant(adder.nl, adder.hints, arch, opts);
}

TEST(Determinism, FingerprintReflectsSeedChange) {
    // Not a promise that every seed differs — just that the fingerprint is
    // sensitive enough to notice when the annealer takes a different path.
    auto adder = asynclib::make_qdi_adder(2);
    cad::FlowOptions s1;
    s1.seed = 1;
    const auto a = cad::run_flow(adder.nl, adder.hints, core::ArchSpec{}, s1);
    bool any_differs = false;
    for (std::uint64_t seed = 2; seed < 6 && !any_differs; ++seed) {
        cad::FlowOptions sn;
        sn.seed = seed;
        const auto b = cad::run_flow(adder.nl, adder.hints, core::ArchSpec{}, sn);
        any_differs = testsupport::flow_fingerprint(a) != testsupport::flow_fingerprint(b);
    }
    EXPECT_TRUE(any_differs) << "five different seeds all produced identical implementations";
}

}  // namespace
