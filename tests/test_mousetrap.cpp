// Tests for the third style: 2-phase bundled data (MOUSETRAP pipelines) —
// netlist-level behaviour, protocol discipline, and full-flow post-route
// equivalence on the fabric.
#include <gtest/gtest.h>

#include "asynclib/fifos.hpp"
#include "base/strings.hpp"
#include "cad/flow.hpp"
#include "eval/metrics.hpp"
#include "sim/channels.hpp"
#include "sim/monitors.hpp"
#include "sim/simulator.hpp"
#include "support/flow_fixtures.hpp"

namespace {

using namespace afpga;
using netlist::Logic;
using netlist::NetId;
using sim::Simulator;

TEST(Mousetrap, SingleStageCapturesOnBothPhases) {
    auto fifo = asynclib::make_mousetrap_fifo(2, 1);
    Simulator sim(fifo.nl);
    sim.run();
    // Token 1 on the rising phase of req.
    sim.schedule_pi(fifo.in[0], Logic::T);
    sim.schedule_pi(fifo.req_in, Logic::T, 100);
    sim.run();
    EXPECT_EQ(sim.value(fifo.out[0]), Logic::T);
    EXPECT_EQ(sim.value(fifo.ack_in), Logic::T);  // phase captured
    // Environment acknowledges by toggling ack_out to match.
    sim.schedule_pi(fifo.ack_out, Logic::T);
    sim.run();
    // Token 2 on the falling phase.
    sim.schedule_pi(fifo.in[0], Logic::F);
    sim.schedule_pi(fifo.in[1], Logic::T);
    sim.schedule_pi(fifo.req_in, Logic::F, 100);
    sim.run();
    EXPECT_EQ(sim.value(fifo.out[0]), Logic::F);
    EXPECT_EQ(sim.value(fifo.out[1]), Logic::T);
    EXPECT_EQ(sim.value(fifo.ack_in), Logic::F);  // phase toggled back
}

TEST(Mousetrap, LatchSnapsShutAfterCapture) {
    auto fifo = asynclib::make_mousetrap_fifo(1, 1);
    Simulator sim(fifo.nl);
    sim.run();
    sim.schedule_pi(fifo.in[0], Logic::T);
    sim.schedule_pi(fifo.req_in, Logic::T, 100);
    sim.run();
    EXPECT_EQ(sim.value(fifo.out[0]), Logic::T);
    // No ack from the environment yet: the stage is closed; input churn
    // must not leak through.
    sim.schedule_pi(fifo.in[0], Logic::F);
    sim.run();
    EXPECT_EQ(sim.value(fifo.out[0]), Logic::T);
}

TEST(Mousetrap, StreamsTokensInOrder) {
    auto fifo = asynclib::make_mousetrap_fifo(4, 3);
    Simulator sim(fifo.nl);
    sim.run();
    std::vector<std::uint64_t> tokens{5, 10, 3, 15, 0, 9, 6};
    sim::Bd2StreamSource src(sim, fifo.in, fifo.req_in, fifo.ack_in, tokens, 60, 60);
    sim::Bd2StreamSink sink(sim, fifo.out, fifo.req_out, fifo.ack_out, 60);
    src.start();
    const auto r = sim.run(100'000'000);
    EXPECT_TRUE(r.quiescent);
    EXPECT_EQ(sink.received(), tokens);
}

TEST(Mousetrap, TwoPhaseBundlingClean) {
    auto fifo = asynclib::make_mousetrap_fifo(4, 2);
    Simulator sim(fifo.nl);
    sim.run();
    sim::TwoPhaseBundledMonitor mon(sim, fifo.out, fifo.req_out, fifo.ack_out, "mt.out");
    std::vector<std::uint64_t> tokens{1, 2, 4, 8, 15};
    sim::Bd2StreamSource src(sim, fifo.in, fifo.req_in, fifo.ack_in, tokens, 60, 60);
    sim::Bd2StreamSink sink(sim, fifo.out, fifo.req_out, fifo.ack_out, 60);
    src.start();
    sim.run(100'000'000);
    EXPECT_EQ(sink.received().size(), tokens.size());
    EXPECT_TRUE(mon.violations().empty())
        << (mon.violations().empty() ? "" : mon.violations()[0].what);
}

TEST(Mousetrap, TwoPhaseHasFewerHandshakeEdgesThanFourPhase) {
    // The 2-phase selling point: no return-to-zero, so the req wire toggles
    // once per token instead of twice.
    auto count_req_edges = [](auto&& fifo, auto&& make_src, auto&& make_sink) {
        Simulator sim(fifo.nl);
        sim.run();
        auto src = make_src(sim, fifo);
        auto sink = make_sink(sim, fifo);
        src.start();
        sim.run(500'000'000);
        return sim.transitions(fifo.req_in);
    };
    std::vector<std::uint64_t> tokens(16, 5);

    auto mt = asynclib::make_mousetrap_fifo(4, 2);
    const auto mt_edges = count_req_edges(
        mt,
        [&](Simulator& s, auto& f) {
            return sim::Bd2StreamSource(s, f.in, f.req_in, f.ack_in, tokens, 60, 60);
        },
        [&](Simulator& s, auto& f) {
            return sim::Bd2StreamSink(s, f.out, f.req_out, f.ack_out, 60);
        });

    auto mp = asynclib::make_micropipeline_fifo(4, 2);
    const auto mp_edges = count_req_edges(
        mp,
        [&](Simulator& s, auto& f) {
            return sim::BdStreamSource(s, f.in, f.req_in, f.ack_in, tokens, 60, 60);
        },
        [&](Simulator& s, auto& f) {
            return sim::BdStreamSink(s, f.out, f.req_out, f.ack_out, 60);
        });

    EXPECT_EQ(mt_edges, 16u);       // one edge per token
    EXPECT_EQ(mp_edges, 2u * 16u);  // rise + RTZ per token
}

TEST(Mousetrap, PostRouteEquivalenceOnFabric) {
    auto fifo = asynclib::make_mousetrap_fifo(2, 2);
    const auto fr = cad::run_flow(fifo.nl, {}, core::paper_arch(), {});
    testsupport::PostRouteSim prs(fr);
    Simulator& sim = *prs.sim;
    const auto& design = prs.design;

    auto po_net = [&](const std::string& name) { return testsupport::po_net(design.nl, name); };
    std::vector<NetId> in = {design.nl.find_net("in[0]"), design.nl.find_net("in[1]")};
    std::vector<NetId> out = {po_net("out[0]"), po_net("out[1]")};
    std::vector<std::uint64_t> tokens{2, 1, 3, 0, 2, 3};
    sim::Bd2StreamSource src(sim, in, design.nl.find_net("req_in"), po_net("ack_in"), tokens,
                             120, 400);
    sim::Bd2StreamSink sink(sim, out, po_net("req_out"), design.nl.find_net("ack_out"), 120);
    src.start();
    sim.run(1'000'000'000);
    EXPECT_EQ(sink.received(), tokens);
}

TEST(Mousetrap, FillingRatioMatchesBundledStyle) {
    // 2-phase bundled data uses the LE the same way 4-phase does (no rails,
    // no validity): filling should land near 50%, not near the QDI 60-75%.
    auto fifo = asynclib::make_mousetrap_fifo(4, 3);
    const auto fr = cad::run_flow(fifo.nl, {}, core::paper_arch(), {});
    const auto f = eval::filling_ratio(fr);
    EXPECT_GT(f.outputs, 0.35);
    EXPECT_LT(f.outputs, 0.60);
}

}  // namespace
