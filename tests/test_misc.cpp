// Remaining coverage: ArchSpec validation, fabric geometry distances, VCD
// output, the umbrella header, and simulator edge cases.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "afpga.hpp"

namespace {

using namespace afpga;
using netlist::CellFunc;
using netlist::Logic;
using netlist::NetId;
using netlist::Netlist;

TEST(ArchSpecValidate, RejectsBadParameters) {
    core::ArchSpec a;
    a.width = 0;
    EXPECT_THROW(a.validate(), base::Error);
    a = {};
    a.channel_width = 1;
    EXPECT_THROW(a.validate(), base::Error);
    a = {};
    a.fc_in = 0.0;
    EXPECT_THROW(a.validate(), base::Error);
    a = {};
    a.le_inputs = 6;
    EXPECT_THROW(a.validate(), base::Error);
    a = {};
    a.pde_quantum_ps = 0;
    EXPECT_THROW(a.validate(), base::Error);
    a = {};
    EXPECT_NO_THROW(a.validate());
}

TEST(Geometry, DistancesAreSymmetricAndPositive) {
    const core::ArchSpec a;
    const core::FabricGeometry g(a);
    EXPECT_EQ(g.distance({0, 0}, {3, 4}), 7u);
    EXPECT_EQ(g.distance({3, 4}, {0, 0}), 7u);
    EXPECT_EQ(g.distance({2, 2}, {2, 2}), 0u);
    // PLB to IOB includes stepping off the array.
    EXPECT_EQ(g.distance({0, 0}, core::IobCoord{core::Side::Bottom, 0}), 1u);
    EXPECT_EQ(g.distance({0, 0}, core::IobCoord{core::Side::Top, 0}), a.height);
}

TEST(Vcd, WritesHeaderAndTransitions) {
    Netlist nl;
    const NetId a = nl.add_input("a");
    const NetId y = nl.add_cell(CellFunc::Inv, "y", {a});
    nl.add_output("y", y);
    sim::Simulator sim(nl);
    const std::string path = "/tmp/afpga_vcd_test.vcd";
    {
        sim::VcdWriter vcd(sim, path);
        sim.run();
        sim.schedule_pi(a, Logic::T, 100);
        sim.run();
    }
    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string s = ss.str();
    EXPECT_NE(s.find("$timescale 1ps"), std::string::npos);
    EXPECT_NE(s.find("$var wire"), std::string::npos);
    EXPECT_NE(s.find("#150"), std::string::npos);  // 100 ps after the 50 ps settle
    std::remove(path.c_str());
}

TEST(Simulator, TransitionsCountBothEdges) {
    Netlist nl;
    const NetId a = nl.add_input("a");
    nl.add_output("a", a);
    sim::Simulator sim(nl);
    sim.run();
    for (int i = 0; i < 5; ++i) {
        sim.schedule_pi(a, Logic::T);
        sim.run();
        sim.schedule_pi(a, Logic::F);
        sim.run();
    }
    EXPECT_EQ(sim.transitions(a), 10u);
}

TEST(Simulator, ValueByNameThrowsOnUnknown) {
    Netlist nl;
    (void)nl.add_input("a");
    sim::Simulator sim(nl);
    EXPECT_THROW((void)sim.value("nope"), base::Error);
    EXPECT_EQ(sim.value("a"), Logic::F);
}

TEST(Simulator, SchedulePiRejectsNonPi) {
    Netlist nl;
    const NetId a = nl.add_input("a");
    const NetId y = nl.add_cell(CellFunc::Inv, "y", {a});
    nl.add_output("y", y);
    sim::Simulator sim(nl);
    EXPECT_THROW(sim.schedule_pi(y, Logic::T), base::Error);
    EXPECT_THROW(sim.schedule_pi(a, Logic::T, -5), base::Error);
}

TEST(Styles, TaxonomyCoversFourStyles) {
    const auto& styles = asynclib::standard_styles();
    EXPECT_EQ(styles.size(), 4u);
    bool has_two_phase = false;
    for (const auto& s : styles)
        has_two_phase |= (s.protocol == asynclib::Protocol::TwoPhase);
    EXPECT_TRUE(has_two_phase);
    EXPECT_EQ(to_string(asynclib::Protocol::FourPhase), "4-phase");
    EXPECT_EQ(to_string(asynclib::Encoding::OneOfFour), "1-of-4");
    EXPECT_EQ(to_string(asynclib::TimingModel::QuasiDelayInsensitive), "QDI");
}

TEST(ImTopology, NamesRoundTrip) {
    EXPECT_EQ(to_string(core::ImTopology::FullCrossbar), "full-crossbar");
    EXPECT_EQ(to_string(core::ImTopology::NoFeedback), "no-feedback");
}

TEST(LeDescribe, MentionsTables) {
    core::LeConfig cfg;
    cfg.tt_a = 0xDEADBEEF;
    const std::string s = core::describe(cfg);
    EXPECT_NE(s.find("deadbeef"), std::string::npos);
}

TEST(Pack, FirstFitWorksWithoutAffinity) {
    auto adder = asynclib::make_qdi_adder(1);
    const auto md = cad::techmap(adder.nl, adder.hints);
    cad::PackOptions opts;
    opts.affinity_clustering = false;
    const auto pd = cad::pack(md, core::ArchSpec{}, opts);
    std::size_t les = 0;
    for (const auto& c : pd.clusters) les += c.le_indices.size();
    EXPECT_EQ(les, md.les.size());
}

TEST(Flow, MappingVerificationCanBeDisabled) {
    auto adder = asynclib::make_qdi_adder(1);
    cad::FlowOptions opts;
    opts.verify_mapping = false;
    EXPECT_NO_THROW((void)cad::run_flow(adder.nl, adder.hints, core::ArchSpec{}, opts));
}

TEST(Techmap, NoGreedyPairingLeavesSingles) {
    auto adder = asynclib::make_qdi_adder(1);
    cad::TechmapOptions opts;
    opts.greedy_pairing = false;
    opts.use_rail_pair_hints = false;
    opts.absorb_validity = false;
    const auto md = cad::techmap(adder.nl, adder.hints, opts);
    for (const auto& le : md.les)
        EXPECT_TRUE((le.a && !le.b) || le.full7) << "pairing happened despite options";
}

}  // namespace
