// The persistent FlowService and the content-addressed stage cache it
// shares across jobs: warm-vs-cold bit identity, the invalidation matrix
// ({seed, per-stage option, arch, netlist} each hitting exactly the stages
// they should), concurrent jobs over one store (the CI TSan leg executes
// this binary), submit/wait/cancel semantics, the mixed-grid smoke that
// pins service results byte-for-byte to the serial run_flow loop, and the
// scheduler's dispatch-order contract (priority, then per-lane round-robin)
// that the socket front-end builds its fairness guarantees on.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "asynclib/adders.hpp"
#include "asynclib/fifos.hpp"
#include "base/check.hpp"
#include "cad/artifact.hpp"
#include "cad/flow.hpp"
#include "cad/flow_service.hpp"
#include "support/flow_fixtures.hpp"

namespace {

using namespace afpga;

/// Expected cache outcome of the five stages, in pipeline order.
struct HitPattern {
    bool techmap, pack, place, route, bitstream;
};

void expect_hits(const cad::FlowTelemetry& t, const HitPattern& want,
                 const std::string& what) {
    const std::pair<const char*, bool> stages[] = {{"techmap", want.techmap},
                                                   {"pack", want.pack},
                                                   {"place", want.place},
                                                   {"route", want.route},
                                                   {"bitstream", want.bitstream}};
    for (const auto& [name, hit] : stages) {
        const cad::StageReport* s = t.stage(name);
        ASSERT_NE(s, nullptr) << what << ": missing stage " << name;
        EXPECT_EQ(s->cache_hit, hit ? 1 : 0) << what << ": stage " << name;
        EXPECT_FALSE(s->cache_key.empty()) << what << ": stage " << name;
    }
}

cad::FlowOptions with_store(const std::shared_ptr<cad::ArtifactStore>& store,
                            cad::FlowOptions opts = {}) {
    opts.artifact_store = store;
    return opts;
}

// ---------------------------------------------------------------------------
// Cache semantics through run_flow
// ---------------------------------------------------------------------------

TEST(ArtifactCache, WarmRerunIsBitIdenticalAndAllHits) {
    auto adder = asynclib::make_qdi_adder(2);
    const core::ArchSpec arch;
    auto store = std::make_shared<cad::ArtifactStore>();

    const auto cold = cad::run_flow(adder.nl, adder.hints, arch, with_store(store));
    expect_hits(cold.telemetry, {false, false, false, false, false}, "cold");

    const auto warm = cad::run_flow(adder.nl, adder.hints, arch, with_store(store));
    expect_hits(warm.telemetry, {true, true, true, true, true}, "warm");

    // Identical keys stage by stage, and an identical flow outcome.
    for (std::size_t i = 0; i < cold.telemetry.stages.size(); ++i)
        EXPECT_EQ(cold.telemetry.stages[i].cache_key, warm.telemetry.stages[i].cache_key);
    EXPECT_EQ(testsupport::flow_fingerprint(cold), testsupport::flow_fingerprint(warm));
}

TEST(ArtifactCache, CachingItselfNeverChangesTheResult) {
    auto adder = asynclib::make_qdi_adder(2);
    const core::ArchSpec arch;
    const auto plain = cad::run_flow(adder.nl, adder.hints, arch, {});
    EXPECT_EQ(plain.telemetry.stages.front().cache_hit, -1);  // caching off
    EXPECT_TRUE(plain.telemetry.stages.front().cache_key.empty());

    auto store = std::make_shared<cad::ArtifactStore>();
    const auto cold = cad::run_flow(adder.nl, adder.hints, arch, with_store(store));
    const auto warm = cad::run_flow(adder.nl, adder.hints, arch, with_store(store));
    EXPECT_EQ(testsupport::flow_fingerprint(plain), testsupport::flow_fingerprint(cold));
    EXPECT_EQ(testsupport::flow_fingerprint(plain), testsupport::flow_fingerprint(warm));
}

TEST(ArtifactCache, RouteKnobChangeReusesUpstreamOnly) {
    auto adder = asynclib::make_qdi_adder(2);
    const core::ArchSpec arch;
    auto store = std::make_shared<cad::ArtifactStore>();
    (void)cad::run_flow(adder.nl, adder.hints, arch, with_store(store));

    cad::FlowOptions tweaked;
    tweaked.route.astar_fac = 0.0;  // pure Dijkstra: a route-stage-only knob
    const auto warm = cad::run_flow(adder.nl, adder.hints, arch, with_store(store, tweaked));
    expect_hits(warm.telemetry, {true, true, true, false, false}, "route knob");

    // Bit-identical to compiling the tweaked options cold.
    const auto cold = cad::run_flow(adder.nl, adder.hints, arch, tweaked);
    EXPECT_EQ(testsupport::flow_fingerprint(cold), testsupport::flow_fingerprint(warm));
}

TEST(ArtifactCache, PdeMarginChangeReprogramsBitstreamOnly) {
    auto adder = asynclib::make_micropipeline_adder(2);
    const core::ArchSpec arch;
    auto store = std::make_shared<cad::ArtifactStore>();
    (void)cad::run_flow(adder.nl, {}, arch, with_store(store));

    cad::FlowOptions tweaked;
    tweaked.pde_extra_margin = 0.5;  // programmed by the bitstream stage alone
    const auto warm = cad::run_flow(adder.nl, {}, arch, with_store(store, tweaked));
    expect_hits(warm.telemetry, {true, true, true, true, false}, "pde margin");

    const auto cold = cad::run_flow(adder.nl, {}, arch, tweaked);
    EXPECT_EQ(testsupport::flow_fingerprint(cold), testsupport::flow_fingerprint(warm));
}

TEST(ArtifactCache, SeedChangeInvalidatesFromPlaceDown) {
    auto adder = asynclib::make_qdi_adder(2);
    const core::ArchSpec arch;
    auto store = std::make_shared<cad::ArtifactStore>();
    (void)cad::run_flow(adder.nl, adder.hints, arch, with_store(store));

    cad::FlowOptions reseeded;
    reseeded.seed = 2;
    const auto warm = cad::run_flow(adder.nl, adder.hints, arch, with_store(store, reseeded));
    expect_hits(warm.telemetry, {true, true, false, false, false}, "seed");

    const auto cold = cad::run_flow(adder.nl, adder.hints, arch, reseeded);
    EXPECT_EQ(testsupport::flow_fingerprint(cold), testsupport::flow_fingerprint(warm));
}

TEST(ArtifactCache, ArchChangeInvalidatesFromPackDown) {
    auto adder = asynclib::make_qdi_adder(2);
    core::ArchSpec arch;
    auto store = std::make_shared<cad::ArtifactStore>();
    (void)cad::run_flow(adder.nl, adder.hints, arch, with_store(store));

    arch.channel_width += 2;  // techmap never reads the architecture
    const auto warm = cad::run_flow(adder.nl, adder.hints, arch, with_store(store));
    expect_hits(warm.telemetry, {true, false, false, false, false}, "arch");
}

TEST(ArtifactCache, NetlistChangeInvalidatesEverything) {
    auto a2 = asynclib::make_qdi_adder(2);
    auto a3 = asynclib::make_qdi_adder(3);
    const core::ArchSpec arch;
    auto store = std::make_shared<cad::ArtifactStore>();
    (void)cad::run_flow(a2.nl, a2.hints, arch, with_store(store));

    const auto warm = cad::run_flow(a3.nl, a3.hints, arch, with_store(store));
    expect_hits(warm.telemetry, {false, false, false, false, false}, "netlist");
}

TEST(ArtifactCache, TelemetryJsonCarriesKeyAndHit) {
    auto adder = asynclib::make_qdi_adder(2);
    auto store = std::make_shared<cad::ArtifactStore>();
    const auto warm = [&] {
        (void)cad::run_flow(adder.nl, adder.hints, core::ArchSpec{}, with_store(store));
        return cad::run_flow(adder.nl, adder.hints, core::ArchSpec{}, with_store(store));
    }();
    const std::string json = warm.telemetry.to_json();
    EXPECT_NE(json.find("\"key\":\"0x"), std::string::npos);
    EXPECT_NE(json.find("\"cache_hit\":true"), std::string::npos);
}

// ---------------------------------------------------------------------------
// FlowService
// ---------------------------------------------------------------------------

TEST(FlowService, MixedGridMatchesSerialLoopByteForByte) {
    // The CI smoke: a small mixed grid — two designs x two seeds x two
    // route-knob settings — through one warm-cached service must equal the
    // plain serial run_flow loop on every job.
    auto adder = asynclib::make_qdi_adder(2);
    auto fifo = asynclib::make_wchb_fifo(2, 2);
    const core::ArchSpec arch;

    std::vector<cad::FlowJob> jobs;
    std::vector<cad::FlowOptions> ref_opts;
    std::vector<const netlist::Netlist*> ref_nl;
    std::vector<const asynclib::MappingHints*> ref_hints;
    for (const bool is_fifo : {false, true}) {
        for (const std::uint64_t seed : {1, 2}) {
            for (const double astar : {1.0, 0.0}) {
                cad::FlowJob j;
                j.name = (is_fifo ? std::string("fifo") : std::string("adder")) + "_s" +
                         std::to_string(seed) + "_a" + std::to_string(astar);
                j.nl = is_fifo ? &fifo.nl : &adder.nl;
                j.hints = is_fifo ? &fifo.hints : &adder.hints;
                j.arch = arch;
                j.opts.seed = seed;
                j.opts.route.astar_fac = astar;
                ref_opts.push_back(j.opts);
                ref_nl.push_back(j.nl);
                ref_hints.push_back(j.hints);
                jobs.push_back(std::move(j));
            }
        }
    }

    cad::FlowService svc;
    const auto ids = svc.submit_grid(std::move(jobs));
    for (std::size_t i = 0; i < ids.size(); ++i) {
        const cad::FlowJobResult& r = svc.wait(ids[i]);
        ASSERT_TRUE(r.ok()) << r.name << ": " << r.error;
        const auto serial = cad::run_flow(*ref_nl[i], *ref_hints[i], arch, ref_opts[i]);
        EXPECT_EQ(testsupport::flow_fingerprint(serial),
                  testsupport::flow_fingerprint(r.result))
            << r.name;
    }
    // The grid repeats upstream work across seeds/knobs, so the shared
    // store must have produced real hits.
    EXPECT_GT(svc.store().hits(), 0u);
}

TEST(FlowService, ConcurrentJobsShareOneStore) {
    // Many concurrent copies of the same compile: whoever wins the race
    // publishes, everyone agrees on the result (also the TSan workout for
    // concurrent get/put/rr_for on one store).
    auto adder = asynclib::make_qdi_adder(2);
    const core::ArchSpec arch;
    const auto solo = cad::run_flow(adder.nl, adder.hints, arch, {});

    cad::FlowServiceOptions so;
    so.threads = 4;
    cad::FlowService svc(so);
    std::vector<cad::FlowJobId> ids;
    for (int i = 0; i < 12; ++i) {
        cad::FlowJob j;
        j.name = "copy" + std::to_string(i);
        j.nl = &adder.nl;
        j.hints = &adder.hints;
        j.arch = arch;
        ids.push_back(svc.submit(std::move(j)));
    }
    svc.wait_all();
    for (cad::FlowJobId id : ids) {
        const cad::FlowJobResult& r = svc.wait(id);
        ASSERT_TRUE(r.ok()) << r.error;
        EXPECT_EQ(testsupport::flow_fingerprint(solo),
                  testsupport::flow_fingerprint(r.result));
    }
    EXPECT_EQ(svc.store().num_rr_graphs(), 1u);
    // Identical jobs share one key chain: five stage artifacts total, and
    // in-flight dedup means concurrent cold jobs waited on the computer
    // instead of publishing duplicates.
    EXPECT_EQ(svc.store().num_artifacts(), 5u);
}

TEST(FlowService, FailuresAreIsolatedPerJob) {
    auto big = asynclib::make_qdi_adder(16);
    auto small = asynclib::make_qdi_adder(2);
    core::ArchSpec tiny;  // 8x8 cannot hold the 16-bit adder

    cad::FlowService svc;
    cad::FlowJob jb;
    jb.name = "too_big";
    jb.nl = &big.nl;
    jb.hints = &big.hints;
    jb.arch = tiny;
    cad::FlowJob js;
    js.name = "fits";
    js.nl = &small.nl;
    js.hints = &small.hints;
    js.arch = tiny;
    const auto id_big = svc.submit(std::move(jb));
    const auto id_small = svc.submit(std::move(js));

    EXPECT_EQ(svc.wait(id_big).status, cad::FlowJobStatus::Failed);
    EXPECT_FALSE(svc.wait(id_big).error.empty());
    EXPECT_TRUE(svc.wait(id_small).ok()) << svc.wait(id_small).error;
}

TEST(FlowService, CancelDropsQueuedJobs) {
    auto adder = asynclib::make_qdi_adder(2);
    const core::ArchSpec arch;
    cad::FlowServiceOptions so;
    so.threads = 1;  // one worker: later submissions are very likely queued
    cad::FlowService svc(so);

    std::vector<cad::FlowJobId> ids;
    for (int i = 0; i < 4; ++i) {
        cad::FlowJob j;
        j.name = "job" + std::to_string(i);
        j.nl = &adder.nl;
        j.hints = &adder.hints;
        j.arch = arch;
        ids.push_back(svc.submit(std::move(j)));
    }
    // Cancellation races the worker by design: cancel() returning true must
    // mean the job never runs; false must mean it ran (or already finished)
    // normally.
    const bool cancelled = svc.cancel(ids.back());
    const cad::FlowJobResult& last = svc.wait(ids.back());
    if (cancelled) {
        EXPECT_EQ(last.status, cad::FlowJobStatus::Cancelled);
        EXPECT_EQ(last.wall_ms, 0.0);
    } else {
        EXPECT_TRUE(last.ok()) << last.error;
    }
    // A finished job can never be cancelled.
    (void)svc.wait(ids.front());
    EXPECT_FALSE(svc.cancel(ids.front()));
    svc.wait_all();
}

TEST(FlowService, ReportJsonAggregates) {
    auto adder = asynclib::make_qdi_adder(2);
    const core::ArchSpec arch;
    cad::FlowService svc;
    for (int i = 0; i < 2; ++i) {
        cad::FlowJob j;
        j.name = "r" + std::to_string(i);
        j.nl = &adder.nl;
        j.hints = &adder.hints;
        j.arch = arch;
        (void)svc.submit(std::move(j));
    }
    svc.wait_all();
    const std::string json = svc.report_json();
    for (const char* field :
         {"\"threads\"", "\"hardware_concurrency\"", "\"jobs_total\":2", "\"jobs_ok\":2",
          "\"jobs_cancelled\":0", "\"artifacts\"", "\"rr_graphs\":1", "\"hits\"",
          "\"misses\"", "\"telemetry\"", "\"queue_ms\""})
        EXPECT_NE(json.find(field), std::string::npos) << field << " missing in " << json;
}

// ---------------------------------------------------------------------------
// Two-tier cache through the service
// ---------------------------------------------------------------------------

/// A unique temp directory wiped on construction and destruction.
class ScratchDir {
public:
    explicit ScratchDir(const std::string& name)
        : path_(std::filesystem::temp_directory_path() / ("afpga_flowsvc_" + name)) {
        std::filesystem::remove_all(path_);
    }
    ~ScratchDir() { std::filesystem::remove_all(path_); }
    [[nodiscard]] std::string str() const { return path_.string(); }

private:
    std::filesystem::path path_;
};

cad::FlowJob adder_job(const std::string& name, const asynclib::QdiAdder& d,
                       const core::ArchSpec& arch, std::uint64_t seed = 1) {
    cad::FlowJob j;
    j.name = name;
    j.nl = &d.nl;
    j.hints = &d.hints;
    j.arch = arch;
    j.opts.seed = seed;
    return j;
}

TEST(FlowServiceDiskCache, RestartOverOneCacheDirIsBitIdenticalAllFromDisk) {
    // A service restarted over the same cache directory must restore every
    // stage from disk — no recompute — and produce a byte-identical flow.
    auto adder = asynclib::make_qdi_adder(2);
    const core::ArchSpec arch;
    ScratchDir dir("restart");

    std::string cold_fp;
    {
        cad::FlowServiceOptions so;
        so.artifact_cache_dir = dir.str();
        cad::FlowService svc(so);
        const auto id = svc.submit(adder_job("cold", adder, arch));
        const cad::FlowJobResult& r = svc.wait(id);
        ASSERT_TRUE(r.ok()) << r.error;
        expect_hits(r.result.telemetry, {false, false, false, false, false}, "cold");
        cold_fp = testsupport::flow_fingerprint(r.result);
        EXPECT_GE(svc.store().stats().disk_writes, 5u);
    }  // service destroyed: only the disk blobs survive

    cad::FlowServiceOptions so;
    so.artifact_cache_dir = dir.str();
    cad::FlowService svc(so);
    const auto id = svc.submit(adder_job("warm", adder, arch));
    const cad::FlowJobResult& r = svc.wait(id);
    ASSERT_TRUE(r.ok()) << r.error;
    expect_hits(r.result.telemetry, {true, true, true, true, true}, "disk warm");
    for (const auto& s : r.result.telemetry.stages) {
        const double* from_disk = s.metric("restored_from_disk");
        ASSERT_NE(from_disk, nullptr) << s.stage << " was not restored from disk";
        EXPECT_EQ(*from_disk, 1.0) << s.stage;
    }
    EXPECT_EQ(testsupport::flow_fingerprint(r.result), cold_fp);
    const cad::ArtifactStoreStats st = svc.store().stats();
    EXPECT_GE(st.disk_hits, 5u);
    EXPECT_EQ(st.disk_bad_blobs, 0u);
}

TEST(FlowServiceDiskCache, MemoryBudgetHoldsWhileDiskKeepsResultsIdentical) {
    // A tight memory budget forces evictions mid-grid; the disk tier absorbs
    // them, the cap is never exceeded, and every job still matches the
    // serial uncached compile byte for byte.
    auto adder = asynclib::make_qdi_adder(2);
    const core::ArchSpec arch;
    ScratchDir dir("budget");

    cad::FlowServiceOptions so;
    so.threads = 2;
    so.artifact_memory_budget_bytes = 8 * 1024;  // far below one grid's products
    so.artifact_cache_dir = dir.str();
    cad::FlowService svc(so);

    std::vector<cad::FlowJobId> ids;
    std::vector<std::uint64_t> seeds = {1, 2, 3};
    for (const auto seed : seeds)
        ids.push_back(svc.submit(adder_job("s" + std::to_string(seed), adder, arch, seed)));
    svc.wait_all();
    for (std::size_t i = 0; i < ids.size(); ++i) {
        const cad::FlowJobResult& r = svc.wait(ids[i]);
        ASSERT_TRUE(r.ok()) << r.name << ": " << r.error;
        cad::FlowOptions o;
        o.seed = seeds[i];
        const auto serial = cad::run_flow(adder.nl, adder.hints, arch, o);
        EXPECT_EQ(testsupport::flow_fingerprint(serial),
                  testsupport::flow_fingerprint(r.result))
            << r.name;
    }
    const cad::ArtifactStoreStats st = svc.store().stats();
    EXPECT_LE(st.resident_bytes, st.memory_budget_bytes);
    EXPECT_GT(st.evictions, 0u);
    EXPECT_EQ(st.memory_budget_bytes, 8u * 1024u);
}

TEST(FlowServiceDiskCache, ReportJsonCarriesTierFields) {
    auto adder = asynclib::make_qdi_adder(2);
    const core::ArchSpec arch;
    ScratchDir dir("report");
    cad::FlowServiceOptions so;
    so.artifact_memory_budget_bytes = 1 << 20;
    so.artifact_cache_dir = dir.str();
    cad::FlowService svc(so);
    (void)svc.submit(adder_job("one", adder, arch));
    svc.wait_all();
    const std::string json = svc.report_json();
    for (const char* field :
         {"\"artifact_cache_dir\"", "\"disk_hits\"", "\"evictions\"", "\"collisions\"",
          "\"resident_bytes\"", "\"memory_budget_bytes\":1048576", "\"disk_writes\"",
          "\"disk_write_failures\"", "\"disk_bad_blobs\"", "\"rr_hits\"", "\"rr_misses\""})
        EXPECT_NE(json.find(field), std::string::npos) << field << " missing in " << json;
}

TEST(FlowService, PrewarmedRrIsSharedIntoResults) {
    auto adder = asynclib::make_qdi_adder(2);
    const core::ArchSpec arch;
    cad::FlowService svc;
    const auto rr = svc.prewarm_rr(arch);
    cad::FlowJob j;
    j.name = "warm_rr";
    j.nl = &adder.nl;
    j.hints = &adder.hints;
    j.arch = arch;
    const auto id = svc.submit(std::move(j));
    const cad::FlowJobResult& r = svc.wait(id);
    ASSERT_TRUE(r.ok()) << r.error;
    EXPECT_EQ(r.result.rr.get(), rr.get());  // one graph end to end
}

TEST(FlowServiceScheduling, PriorityOrdersDispatchAcrossSubmissionOrder) {
    // Queue four jobs while dispatch is paused; on resume the scheduler must
    // start them by priority (desc), then submission order — regardless of
    // the order they were submitted in.
    auto adder = asynclib::make_qdi_adder(2);
    const core::ArchSpec arch;
    cad::FlowServiceOptions so;
    so.threads = 1;
    cad::FlowService svc(so);
    svc.pause();
    auto job = [&](const char* name, int prio, std::uint64_t seed) {
        cad::FlowJob j = adder_job(name, adder, arch, seed);
        j.priority = prio;
        return svc.submit(std::move(j));
    };
    const auto a = job("a_p0", 0, 1);
    const auto b = job("b_p0", 0, 2);
    const auto c = job("c_p2", 2, 3);
    const auto d = job("d_p1", 1, 4);
    EXPECT_EQ(svc.peek(c).start_seq, 0u);  // nothing started while paused
    svc.resume();
    svc.wait_all();
    EXPECT_EQ(svc.wait(c).start_seq, 1u);
    EXPECT_EQ(svc.wait(d).start_seq, 2u);
    EXPECT_EQ(svc.wait(a).start_seq, 3u);
    EXPECT_EQ(svc.wait(b).start_seq, 4u);
    for (const auto id : {a, b, c, d}) EXPECT_TRUE(svc.wait(id).ok());
}

TEST(FlowServiceScheduling, EqualPriorityRoundRobinsAcrossLanes) {
    // Lane 1 floods the queue with three jobs before lane 2 submits its
    // three: dispatch must still alternate lanes (least-recently-started
    // lane first), so a flooding client cannot starve the other.
    auto adder = asynclib::make_qdi_adder(2);
    const core::ArchSpec arch;
    cad::FlowServiceOptions so;
    so.threads = 1;
    cad::FlowService svc(so);
    svc.pause();
    std::vector<cad::FlowJobId> lane1, lane2;
    for (int i = 0; i < 3; ++i) {
        cad::FlowJob j = adder_job("l1_" + std::to_string(i), adder, arch, i + 1);
        j.lane = 1;
        lane1.push_back(svc.submit(std::move(j)));
    }
    for (int i = 0; i < 3; ++i) {
        cad::FlowJob j = adder_job("l2_" + std::to_string(i), adder, arch, i + 4);
        j.lane = 2;
        lane2.push_back(svc.submit(std::move(j)));
    }
    svc.resume();
    svc.wait_all();
    // Expected interleave: l1_0 l2_0 l1_1 l2_1 l1_2 l2_2.
    for (int i = 0; i < 3; ++i) {
        EXPECT_EQ(svc.wait(lane1[i]).start_seq, static_cast<std::uint64_t>(2 * i + 1)) << i;
        EXPECT_EQ(svc.wait(lane2[i]).start_seq, static_cast<std::uint64_t>(2 * i + 2)) << i;
    }
}

TEST(FlowServiceScheduling, CancelRacingWaitAllNeverHangs) {
    // wait_all() parks on "every job terminal"; cancelling queued jobs from
    // another thread is one of the transitions that must wake it.
    auto adder = asynclib::make_qdi_adder(2);
    const core::ArchSpec arch;
    cad::FlowServiceOptions so;
    so.threads = 1;
    cad::FlowService svc(so);
    svc.pause();
    std::vector<cad::FlowJobId> ids;
    for (int i = 0; i < 4; ++i)
        ids.push_back(svc.submit(adder_job("j" + std::to_string(i), adder, arch, i + 1)));
    std::thread waiter([&] { svc.wait_all(); });
    EXPECT_TRUE(svc.cancel(ids[2]));
    EXPECT_TRUE(svc.cancel(ids[3]));
    svc.resume();
    waiter.join();  // hangs here if a cancel transition fails to notify
    EXPECT_TRUE(svc.wait(ids[0]).ok());
    EXPECT_TRUE(svc.wait(ids[1]).ok());
    EXPECT_EQ(svc.wait(ids[2]).status, cad::FlowJobStatus::Cancelled);
    EXPECT_EQ(svc.wait(ids[3]).status, cad::FlowJobStatus::Cancelled);
}

TEST(FlowServiceScheduling, PausedServiceDestructorStillDrains) {
    // Destroying a paused service with queued jobs must not deadlock: the
    // destructor resumes dispatch implicitly and drains the queue.
    auto adder = asynclib::make_qdi_adder(2);
    const core::ArchSpec arch;
    std::atomic<int> finished{0};
    {
        cad::FlowServiceOptions so;
        so.threads = 1;
        so.on_job_finished = [&](cad::FlowJobId) { finished.fetch_add(1); };
        cad::FlowService svc(so);
        svc.pause();
        (void)svc.submit(adder_job("one", adder, arch, 1));
        (void)svc.submit(adder_job("two", adder, arch, 2));
        EXPECT_EQ(svc.num_pending(), 2u);
    }  // destructor: resume + drain
    EXPECT_EQ(finished.load(), 2);
}

}  // namespace
