// Unit tests for the base utilities: strong ids, bit vectors, RNG, tables.
#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "base/bitvector.hpp"
#include "base/check.hpp"
#include "base/ids.hpp"
#include "base/rng.hpp"
#include "base/strings.hpp"
#include "base/table.hpp"

namespace {

using afpga::base::BitVector;
using afpga::base::Rng;
using afpga::base::StrongId;

struct FooTag {};
struct BarTag {};
using FooId = StrongId<FooTag>;
using BarId = StrongId<BarTag>;

TEST(StrongId, DefaultIsInvalid) {
    FooId id;
    EXPECT_FALSE(id.valid());
    EXPECT_EQ(id, FooId::invalid());
}

TEST(StrongId, ValueRoundTrip) {
    FooId id{42u};
    EXPECT_TRUE(id.valid());
    EXPECT_EQ(id.value(), 42u);
    EXPECT_EQ(id.index(), 42u);
}

TEST(StrongId, DistinctTagsAreDistinctTypes) {
    static_assert(!std::is_same_v<FooId, BarId>);
}

TEST(StrongId, Ordering) {
    EXPECT_LT(FooId{1u}, FooId{2u});
    EXPECT_EQ(FooId{7u}, FooId{7u});
}

TEST(StrongId, Hashable) {
    std::unordered_set<FooId> s;
    s.insert(FooId{1u});
    s.insert(FooId{1u});
    s.insert(FooId{2u});
    EXPECT_EQ(s.size(), 2u);
}

TEST(BitVector, ConstructAndGet) {
    BitVector bv(130);
    EXPECT_EQ(bv.size(), 130u);
    EXPECT_TRUE(bv.none());
    bv.set(0, true);
    bv.set(64, true);
    bv.set(129, true);
    EXPECT_TRUE(bv.get(0));
    EXPECT_TRUE(bv.get(64));
    EXPECT_TRUE(bv.get(129));
    EXPECT_FALSE(bv.get(1));
    EXPECT_EQ(bv.count_ones(), 3u);
}

TEST(BitVector, FillConstructorMasksTail) {
    BitVector bv(70, true);
    EXPECT_EQ(bv.count_ones(), 70u);
}

TEST(BitVector, Flip) {
    BitVector bv(8);
    bv.flip(3);
    EXPECT_TRUE(bv.get(3));
    bv.flip(3);
    EXPECT_FALSE(bv.get(3));
}

TEST(BitVector, PushBackGrows) {
    BitVector bv;
    for (int i = 0; i < 100; ++i) bv.push_back(i % 3 == 0);
    EXPECT_EQ(bv.size(), 100u);
    EXPECT_TRUE(bv.get(0));
    EXPECT_FALSE(bv.get(1));
    EXPECT_TRUE(bv.get(99));
}

TEST(BitVector, AppendAndGetBits) {
    BitVector bv;
    bv.append_bits(0b1011, 4);
    bv.append_bits(0xFF, 8);
    EXPECT_EQ(bv.get_bits(0, 4), 0b1011u);
    EXPECT_EQ(bv.get_bits(4, 8), 0xFFu);
}

TEST(BitVector, SetBits) {
    BitVector bv(16);
    bv.set_bits(4, 0b1101, 4);
    EXPECT_EQ(bv.get_bits(4, 4), 0b1101u);
    EXPECT_EQ(bv.get_bits(0, 4), 0u);
}

TEST(BitVector, EqualityAndCrc) {
    BitVector a(40);
    BitVector b(40);
    a.set(17, true);
    b.set(17, true);
    EXPECT_EQ(a, b);
    EXPECT_EQ(a.crc32(), b.crc32());
    b.set(18, true);
    EXPECT_NE(a, b);
    EXPECT_NE(a.crc32(), b.crc32());
}

TEST(BitVector, CrcDependsOnLength) {
    BitVector a(8);
    BitVector b(16);
    EXPECT_NE(a.crc32(), b.crc32());
}

TEST(BitVector, OutOfRangeThrows) {
    BitVector bv(8);
    EXPECT_THROW((void)bv.get(8), afpga::base::Error);
    EXPECT_THROW(bv.set(9, true), afpga::base::Error);
}

TEST(Rng, Deterministic) {
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SeedsDiffer) {
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
    EXPECT_LT(same, 4);
}

TEST(Rng, ForkDoesNotPerturbParent) {
    Rng plain(99);
    Rng forked(99);
    (void)forked.fork(0);
    (void)forked.fork(1);
    for (int i = 0; i < 256; ++i) EXPECT_EQ(plain.next(), forked.next());
    // Forking mid-sequence is equally invisible.
    (void)forked.fork(7);
    for (int i = 0; i < 256; ++i) EXPECT_EQ(plain.next(), forked.next());
}

TEST(Rng, ForkStreamsIndependentOfParentAndSiblings) {
    // Regression for replica use: a fork must never replay (a shifted copy
    // of) the parent sequence or a sibling's. With 64-bit draws, any overlap
    // between the 256-draw windows of the three streams flags correlation.
    Rng parent(4242);
    Rng f0 = parent.fork(0);
    Rng f1 = parent.fork(1);
    std::unordered_set<std::uint64_t> parent_draws;
    for (int i = 0; i < 256; ++i) parent_draws.insert(parent.next());
    int collisions = 0;
    std::unordered_set<std::uint64_t> f0_draws;
    for (int i = 0; i < 256; ++i) {
        const std::uint64_t v = f0.next();
        collisions += parent_draws.count(v);
        f0_draws.insert(v);
    }
    for (int i = 0; i < 256; ++i) {
        const std::uint64_t v = f1.next();
        collisions += parent_draws.count(v);
        collisions += f0_draws.count(v);
    }
    EXPECT_EQ(collisions, 0);
}

TEST(Rng, ForkDeterministicFromParentState) {
    Rng a(5);
    Rng b(5);
    Rng fa = a.fork(3);
    Rng fb = b.fork(3);
    for (int i = 0; i < 64; ++i) EXPECT_EQ(fa.next(), fb.next());
    // Same stream id from a different parent state is a different stream.
    (void)b.next();
    Rng fc = b.fork(3);
    int same = 0;
    Rng fa2 = a.fork(3);
    for (int i = 0; i < 64; ++i) same += (fa2.next() == fc.next());
    EXPECT_LT(same, 4);
}

TEST(Rng, DeriveSeedDistinctAcrossStreams) {
    std::unordered_set<std::uint64_t> seeds;
    for (std::uint64_t base : {1ULL, 7ULL, 0xDEADBEEFULL})
        for (std::uint64_t stream = 0; stream < 512; ++stream)
            seeds.insert(Rng::derive_seed(base, stream));
    EXPECT_EQ(seeds.size(), 3u * 512u);
    // Pure function of its arguments.
    EXPECT_EQ(Rng::derive_seed(42, 3), Rng::derive_seed(42, 3));
}

TEST(Rng, BelowInRange) {
    Rng r(7);
    for (int i = 0; i < 1000; ++i) EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, RangeInclusive) {
    Rng r(9);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 500; ++i) {
        const auto v = r.range(-2, 2);
        EXPECT_GE(v, -2);
        EXPECT_LE(v, 2);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UniformInUnitInterval) {
    Rng r(11);
    for (int i = 0; i < 1000; ++i) {
        const double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, ShufflePreservesElements) {
    Rng r(13);
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
    auto w = v;
    r.shuffle(w);
    std::sort(w.begin(), w.end());
    EXPECT_EQ(v, w);
}

TEST(Strings, FormatPercent) {
    EXPECT_EQ(afpga::base::format_percent(0.51), "51.0%");
    EXPECT_EQ(afpga::base::format_percent(0.7649, 1), "76.5%");
}

TEST(Strings, JoinSplit) {
    EXPECT_EQ(afpga::base::join({"a", "b", "c"}, ", "), "a, b, c");
    const auto parts = afpga::base::split("x,y,,z", ',');
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[2], "");
}

TEST(Strings, BusBit) { EXPECT_EQ(afpga::base::bus_bit("sum", 3), "sum[3]"); }

TEST(TextTable, RendersAligned) {
    afpga::base::TextTable t({"name", "value"});
    t.add_row({"alpha", "1"});
    t.add_row({"b", "22222"});
    const std::string s = t.render();
    EXPECT_NE(s.find("alpha"), std::string::npos);
    EXPECT_NE(s.find("-----"), std::string::npos);
    EXPECT_EQ(t.rows(), 2u);
}

TEST(TextTable, ArityMismatchThrows) {
    afpga::base::TextTable t({"a", "b"});
    EXPECT_THROW(t.add_row({"only-one"}), afpga::base::Error);
}

TEST(Check, ThrowsWithMessage) {
    try {
        afpga::base::check(false, "boom");
        FAIL() << "expected throw";
    } catch (const afpga::base::Error& e) {
        EXPECT_STREQ(e.what(), "boom");
    }
}

}  // namespace
