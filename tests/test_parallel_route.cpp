// The deterministic in-flow parallel router and the parallel RR-graph build:
// thread-count invariance of the routed result, legality under congestion,
// boundary-net handling across partition cuts, and byte-identity of the
// pool-built RR graph against the serial build.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "base/threadpool.hpp"
#include "cad/route.hpp"
#include "cad/route_parallel.hpp"
#include "core/rrgraph.hpp"

namespace {

using namespace afpga;
using cad::RouteRequest;
using cad::RouterOptions;
using cad::RoutingResult;
using core::ArchSpec;
using core::PlbCoord;
using core::RRGraph;

ArchSpec arch_of(std::uint32_t w, std::uint32_t h, std::uint32_t cw) {
    ArchSpec a;
    a.width = w;
    a.height = h;
    a.channel_width = cw;
    return a;
}

RouteRequest plb_to_plb(PlbCoord from, PlbCoord to) {
    RouteRequest rq;
    rq.src_plb = from;
    RouteRequest::Sink sk;
    sk.plb = to;
    rq.sinks.push_back(sk);
    return rq;
}

/// Deep equality of two routing results, down to every tree edge and delay.
void expect_identical_routing(const RoutingResult& a, const RoutingResult& b) {
    ASSERT_EQ(a.success, b.success);
    EXPECT_EQ(a.iterations, b.iterations);
    EXPECT_EQ(a.wirelength, b.wirelength);
    EXPECT_EQ(a.num_bins, b.num_bins);
    EXPECT_EQ(a.boundary_nets, b.boundary_nets);
    EXPECT_EQ(a.overuse_trajectory, b.overuse_trajectory);
    ASSERT_EQ(a.trees.size(), b.trees.size());
    for (std::size_t i = 0; i < a.trees.size(); ++i) {
        EXPECT_EQ(a.trees[i].root_opin, b.trees[i].root_opin) << "net " << i;
        EXPECT_EQ(a.trees[i].edges, b.trees[i].edges) << "net " << i;
        ASSERT_EQ(a.trees[i].sinks.size(), b.trees[i].sinks.size());
        for (std::size_t s = 0; s < a.trees[i].sinks.size(); ++s) {
            EXPECT_EQ(a.trees[i].sinks[s].ipin, b.trees[i].sinks[s].ipin);
            EXPECT_EQ(a.trees[i].sinks[s].delay_ps, b.trees[i].sinks[s].delay_ps);
        }
    }
}

/// No RR node may hold more nets than its capacity.
void expect_legal(const RRGraph& rr, const RoutingResult& res) {
    std::vector<std::uint32_t> occ(rr.num_nodes(), 0);
    for (const auto& t : res.trees) {
        std::set<std::uint32_t> mine;
        if (t.root_opin != UINT32_MAX) mine.insert(t.root_opin);
        for (std::uint32_t e : t.edges) {
            mine.insert(rr.edge_source(e));
            mine.insert(rr.edge_target(e));
        }
        for (std::uint32_t n : mine) ++occ[n];
    }
    for (std::uint32_t n = 0; n < rr.num_nodes(); ++n)
        EXPECT_LE(occ[n], rr.node_capacity(n)) << "node " << n;
}

// A 13x13 fabric splits (min_bin_dim = 4) into four leaf quadrants around a
// separator cross; the mix below puts nets in every quadrant plus nets that
// must cross the cuts.
std::vector<RouteRequest> quadrant_mix() {
    std::vector<RouteRequest> reqs;
    // Local nets, one per quadrant.
    reqs.push_back(plb_to_plb({0, 0}, {3, 3}));
    reqs.push_back(plb_to_plb({8, 0}, {11, 3}));
    reqs.push_back(plb_to_plb({0, 8}, {3, 11}));
    reqs.push_back(plb_to_plb({8, 8}, {11, 11}));
    // More local traffic to make the bins do real work.
    for (std::uint32_t i = 0; i < 4; ++i) {
        reqs.push_back(plb_to_plb({i, 1}, {3 - i, 2}));
        reqs.push_back(plb_to_plb({8 + i, 1}, {11 - i, 2}));
    }
    // Boundary nets: cross the vertical cut, the horizontal cut, and both.
    reqs.push_back(plb_to_plb({2, 2}, {10, 2}));
    reqs.push_back(plb_to_plb({2, 2}, {2, 10}));
    reqs.push_back(plb_to_plb({0, 0}, {12, 12}));
    return reqs;
}

TEST(ParallelRoute, ThreadCountInvariance) {
    const RRGraph rr(arch_of(13, 13, 10));
    const auto reqs = quadrant_mix();
    RouterOptions opts;
    std::vector<RoutingResult> results;
    for (unsigned t : {1u, 2u, 4u, 8u}) {
        base::ThreadPool pool(t);
        results.push_back(cad::route_parallel(rr, reqs, opts, pool));
        ASSERT_TRUE(results.back().success) << t << " threads";
    }
    for (std::size_t i = 1; i < results.size(); ++i)
        expect_identical_routing(results[0], results[i]);
    EXPECT_GT(results[0].num_bins, 1u);
    EXPECT_GE(results[0].boundary_nets, 3u);
}

TEST(ParallelRoute, RepeatedRunsIdentical) {
    const RRGraph rr(arch_of(13, 13, 10));
    const auto reqs = quadrant_mix();
    base::ThreadPool pool(4);
    const auto a = cad::route_parallel(rr, reqs, {}, pool);
    const auto b = cad::route_parallel(rr, reqs, {}, pool);
    expect_identical_routing(a, b);
}

TEST(ParallelRoute, LegalityUnderCongestion) {
    // Funnel many nets into one column so PathFinder has to negotiate; the
    // final result must be legal and identical for every worker count.
    const RRGraph rr(arch_of(13, 13, 8));
    std::vector<RouteRequest> reqs;
    for (std::uint32_t i = 0; i < 12; ++i)
        reqs.push_back(plb_to_plb({i, 0}, {6, 12}));  // all into the separator column
    for (std::uint32_t i = 0; i < 12; ++i)
        if (i != 6) reqs.push_back(plb_to_plb({6, 12 - i}, {i, 0}));
    base::ThreadPool one(1);
    base::ThreadPool four(4);
    const auto a = cad::route_parallel(rr, reqs, {}, one);
    const auto b = cad::route_parallel(rr, reqs, {}, four);
    ASSERT_TRUE(a.success);
    expect_identical_routing(a, b);
    expect_legal(rr, a);
    EXPECT_GT(a.iterations, 1) << "expected real congestion negotiation";
}

TEST(ParallelRoute, BoundaryNetsRouteCorrectly) {
    const RRGraph rr(arch_of(13, 13, 10));
    // Only cut-crossing nets: every one must be serialized and still legal.
    std::vector<RouteRequest> reqs;
    for (std::uint32_t i = 0; i < 5; ++i) reqs.push_back(plb_to_plb({1, 2 + i}, {11, 2 + i}));
    base::ThreadPool pool(4);
    const auto res = cad::route_parallel(rr, reqs, {}, pool);
    ASSERT_TRUE(res.success);
    EXPECT_EQ(res.boundary_nets, reqs.size());
    expect_legal(rr, res);
    // Each tree must actually connect root to its sink.
    for (const auto& tree : res.trees) {
        std::set<std::uint32_t> reach{tree.root_opin};
        bool changed = true;
        while (changed) {
            changed = false;
            for (std::uint32_t e : tree.edges)
                if (reach.count(rr.edge_source(e)) && !reach.count(rr.edge_target(e))) {
                    reach.insert(rr.edge_target(e));
                    changed = true;
                }
        }
        EXPECT_TRUE(reach.count(tree.sinks[0].ipin));
    }
}

TEST(ParallelRoute, PadNetsAndMulticastAcrossCuts) {
    const RRGraph rr(arch_of(13, 13, 10));
    std::vector<RouteRequest> reqs;
    RouteRequest in;
    in.src_is_pad = true;
    in.src_pad = 0;
    RouteRequest::Sink s1;
    s1.plb = {2, 2};
    in.sinks.push_back(s1);
    RouteRequest::Sink s2;
    s2.plb = {10, 10};
    in.sinks.push_back(s2);
    reqs.push_back(in);
    RouteRequest out = plb_to_plb({10, 2}, {10, 2});
    out.sinks.clear();
    RouteRequest::Sink pad_sink;
    pad_sink.is_pad = true;
    pad_sink.pad = 9;
    out.sinks.push_back(pad_sink);
    reqs.push_back(out);
    base::ThreadPool one(1);
    base::ThreadPool three(3);
    const auto a = cad::route_parallel(rr, reqs, {}, one);
    const auto b = cad::route_parallel(rr, reqs, {}, three);
    ASSERT_TRUE(a.success);
    expect_identical_routing(a, b);
    EXPECT_EQ(a.trees[1].sinks[0].ipin, rr.pad_ipin(9));
}

TEST(ParallelRoute, SingleBinFabricStillWorks) {
    // 8x8 with min_bin_dim=4 cannot split: everything lands in the root bin
    // and the router degenerates to one serial task — results must still be
    // invariant and legal.
    const RRGraph rr(arch_of(8, 8, 10));
    std::vector<RouteRequest> reqs;
    for (std::uint32_t i = 0; i < 6; ++i) reqs.push_back(plb_to_plb({i, 0}, {7 - i, 7}));
    base::ThreadPool one(1);
    base::ThreadPool four(4);
    const auto a = cad::route_parallel(rr, reqs, {}, one);
    const auto b = cad::route_parallel(rr, reqs, {}, four);
    ASSERT_TRUE(a.success);
    EXPECT_EQ(a.num_bins, 1u);
    EXPECT_EQ(a.boundary_nets, 0u);
    expect_identical_routing(a, b);
    expect_legal(rr, a);
}

TEST(ParallelRoute, SerialRouterStillAgreesWithItself) {
    // The partitioned router is not required to match cad::route bit-for-bit
    // (net order and search confinement differ), but both must be legal on
    // the same problem and within a sane quality envelope.
    const RRGraph rr(arch_of(13, 13, 10));
    const auto reqs = quadrant_mix();
    base::ThreadPool pool(4);
    const auto par = cad::route_parallel(rr, reqs, {}, pool);
    const auto ser = cad::route(rr, reqs, {});
    ASSERT_TRUE(par.success);
    ASSERT_TRUE(ser.success);
    expect_legal(rr, par);
    expect_legal(rr, ser);
    EXPECT_LT(par.wirelength, 3 * ser.wirelength + 10);
}

// --- parallel RR-graph construction -----------------------------------------

TEST(ParallelRRBuild, ByteIdenticalToSerial) {
    const ArchSpec a = arch_of(13, 13, 10);
    const RRGraph serial(a);
    for (unsigned t : {1u, 3u, 8u}) {
        base::ThreadPool pool(t);
        const RRGraph par(a, pool);
        ASSERT_EQ(serial.num_nodes(), par.num_nodes());
        ASSERT_EQ(serial.num_edges(), par.num_edges());
        EXPECT_EQ(serial.content_fingerprint(), par.content_fingerprint()) << t << " workers";
    }
}

TEST(ParallelRRBuild, AdjacencyMatchesSerial) {
    const ArchSpec a = arch_of(9, 7, 6);  // non-square on purpose
    const RRGraph serial(a);
    base::ThreadPool pool(4);
    const RRGraph par(a, pool);
    ASSERT_EQ(serial.num_nodes(), par.num_nodes());
    for (std::uint32_t n = 0; n < serial.num_nodes(); ++n) {
        const auto s = serial.out(n);
        const auto p = par.out(n);
        ASSERT_EQ(s.size(), p.size()) << "node " << n;
        for (std::size_t i = 0; i < s.size(); ++i) {
            EXPECT_EQ(s[i].edge, p[i].edge);
            EXPECT_EQ(s[i].to, p[i].to);
        }
    }
}

TEST(ParallelRRBuild, FingerprintSensitiveToArch) {
    const RRGraph a(arch_of(8, 8, 10));
    const RRGraph b(arch_of(8, 8, 12));
    EXPECT_NE(a.content_fingerprint(), b.content_fingerprint());
}

}  // namespace
