// Multilevel placement: the coarsening hierarchy's invariants (weight
// conservation, contracted-net pin sets, matching determinism) and the
// V-cycle engine's contract (legality, determinism, engine tag, per-level
// telemetry).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <utility>
#include <vector>

#include "asynclib/adders.hpp"
#include "cad/pack.hpp"
#include "cad/place.hpp"
#include "cad/place_coarsen.hpp"
#include "cad/place_model.hpp"
#include "cad/techmap.hpp"
#include "core/archspec.hpp"

namespace {

using namespace afpga;

struct Design {
    cad::MappedDesign md;
    cad::PackedDesign pd;
    core::ArchSpec arch;
};

Design make_design() {
    Design d;
    auto adder = asynclib::make_qdi_adder(2);
    d.md = cad::techmap(adder.nl, adder.hints);
    d.pd = cad::pack(d.md, d.arch);
    return d;
}

Design make_wide_design() {
    Design d;
    auto adder = asynclib::make_qdi_adder(4);
    d.arch.width = d.arch.height = 13;
    d.arch.channel_width = 12;
    d.md = cad::techmap(adder.nl, adder.hints);
    d.pd = cad::pack(d.md, d.arch);
    return d;
}

void expect_level_well_formed(const cad::CoarseLevel& lv) {
    ASSERT_EQ(lv.node_weight.size(), lv.num_nodes);
    for (const cad::CoarseNet& net : lv.nets) {
        ASSERT_GE(net.pins.size(), 2u) << "contracted net degenerated to < 2 pins";
        EXPECT_GT(net.weight, 0.0);
        EXPECT_TRUE(std::is_sorted(net.pins.begin(), net.pins.end()));
        EXPECT_TRUE(std::adjacent_find(net.pins.begin(), net.pins.end()) == net.pins.end())
            << "duplicate pin in a contracted net";
        for (const std::uint32_t p : net.pins)
            EXPECT_LT(p, lv.num_nodes + lv.num_io) << "pin out of range";
    }
}

bool levels_equal(const cad::CoarseLevel& a, const cad::CoarseLevel& b) {
    if (a.num_nodes != b.num_nodes || a.num_io != b.num_io) return false;
    if (a.node_weight != b.node_weight || a.map_down != b.map_down) return false;
    if (a.nets.size() != b.nets.size()) return false;
    for (std::size_t i = 0; i < a.nets.size(); ++i)
        if (a.nets[i].pins != b.nets[i].pins || a.nets[i].weight != b.nets[i].weight)
            return false;
    return true;
}

// --- coarsening hierarchy ---------------------------------------------------

TEST(PlaceCoarsen, WeightsConservedAndIoSurvivesAtEveryLevel) {
    const Design d = make_design();
    const cad::PlaceModel model(d.pd, d.md, d.arch);
    const auto levels = cad::build_hierarchy(model, 0.5, 4, 10);
    ASSERT_GE(levels.size(), 2u) << "fixture too small to coarsen — shrink min_nodes";
    for (std::size_t li = 0; li < levels.size(); ++li) {
        const cad::CoarseLevel& lv = levels[li];
        expect_level_well_formed(lv);
        EXPECT_EQ(lv.num_io, model.io_entity_ids.size()) << "level " << li;
        // Weight conservation: every level still represents every cluster.
        std::uint64_t total = 0;
        for (const std::uint32_t w : lv.node_weight) total += w;
        EXPECT_EQ(total, static_cast<std::uint64_t>(model.num_clusters)) << "level " << li;
        if (li == 0) {
            EXPECT_EQ(lv.num_nodes, model.num_clusters);
            EXPECT_TRUE(lv.map_down.empty());
            for (const std::uint32_t w : lv.node_weight) EXPECT_EQ(w, 1u);
        } else {
            // Strict shrink, and the mapping is a total surjective function
            // of the finer level's nodes.
            const cad::CoarseLevel& fine = levels[li - 1];
            EXPECT_LT(lv.num_nodes, fine.num_nodes) << "level " << li;
            ASSERT_EQ(lv.map_down.size(), fine.num_nodes);
            std::vector<char> hit(lv.num_nodes, 0);
            for (const std::uint32_t c : lv.map_down) {
                ASSERT_LT(c, lv.num_nodes);
                hit[c] = 1;
            }
            EXPECT_TRUE(std::all_of(hit.begin(), hit.end(), [](char h) { return h != 0; }))
                << "unreachable coarse node at level " << li;
        }
    }
}

TEST(PlaceCoarsen, ContractedNetsAreExactlyTheImageOfFinerNets) {
    const Design d = make_wide_design();
    const cad::PlaceModel model(d.pd, d.md, d.arch);
    const auto levels = cad::build_hierarchy(model, 0.5, 4, 10);
    ASSERT_GE(levels.size(), 2u);
    for (std::size_t li = 1; li < levels.size(); ++li) {
        const cad::CoarseLevel& fine = levels[li - 1];
        const cad::CoarseLevel& coarse = levels[li];
        // Recontract the finer nets by hand: map pins, dedupe, drop
        // single-pin leftovers, merge equal pin sets summing weights.
        std::vector<std::pair<std::vector<std::uint32_t>, double>> expect;
        for (const cad::CoarseNet& net : fine.nets) {
            std::vector<std::uint32_t> pins;
            pins.reserve(net.pins.size());
            for (const std::uint32_t p : net.pins)
                pins.push_back(p < fine.num_nodes
                                   ? coarse.map_down[p]
                                   : static_cast<std::uint32_t>(coarse.num_nodes +
                                                                (p - fine.num_nodes)));
            std::sort(pins.begin(), pins.end());
            pins.erase(std::unique(pins.begin(), pins.end()), pins.end());
            if (pins.size() < 2) continue;
            expect.emplace_back(std::move(pins), net.weight);
        }
        std::sort(expect.begin(), expect.end(),
                  [](const auto& a, const auto& b) { return a.first < b.first; });
        std::vector<std::pair<std::vector<std::uint32_t>, double>> merged;
        for (auto& [pins, w] : expect) {
            if (!merged.empty() && merged.back().first == pins)
                merged.back().second += w;
            else
                merged.emplace_back(std::move(pins), w);
        }
        ASSERT_EQ(coarse.nets.size(), merged.size()) << "level " << li;
        for (std::size_t ni = 0; ni < merged.size(); ++ni) {
            EXPECT_EQ(coarse.nets[ni].pins, merged[ni].first) << "level " << li << " net " << ni;
            EXPECT_DOUBLE_EQ(coarse.nets[ni].weight, merged[ni].second)
                << "level " << li << " net " << ni;
        }
    }
}

TEST(PlaceCoarsen, MatchingIsDeterministic) {
    const Design d = make_design();
    const cad::PlaceModel model(d.pd, d.md, d.arch);
    const auto a = cad::build_hierarchy(model, 0.5, 4, 10);
    const auto b = cad::build_hierarchy(model, 0.5, 4, 10);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t li = 0; li < a.size(); ++li)
        EXPECT_TRUE(levels_equal(a[li], b[li])) << "level " << li << " differs between builds";
}

TEST(PlaceCoarsen, KnobsBoundTheHierarchy) {
    const Design d = make_design();
    const cad::PlaceModel model(d.pd, d.md, d.arch);
    // max_levels = 0: only the finest level, whatever the other knobs say.
    const auto flat = cad::build_hierarchy(model, 0.5, 1, 0);
    ASSERT_EQ(flat.size(), 1u);
    EXPECT_EQ(flat[0].num_nodes, model.num_clusters);
    // min_nodes at the cluster count: nothing to coarsen.
    const auto floor_hit = cad::build_hierarchy(model, 0.5, model.num_clusters, 10);
    EXPECT_EQ(floor_hit.size(), 1u);
    // A generous budget must stop at or above min_nodes.
    const auto deep = cad::build_hierarchy(model, 0.5, 4, 10);
    EXPECT_GE(deep.back().num_nodes, 4u);
}

// --- multilevel engine ------------------------------------------------------

void expect_legal(const cad::Placement& pl, const core::ArchSpec& arch) {
    std::set<std::pair<std::uint32_t, std::uint32_t>> sites;
    for (const auto& loc : pl.cluster_loc) {
        EXPECT_LT(loc.x, arch.width);
        EXPECT_LT(loc.y, arch.height);
        EXPECT_TRUE(sites.insert({loc.x, loc.y}).second) << "overlapping clusters";
    }
    std::set<std::uint32_t> pads;
    for (const auto& [name, pad] : pl.pi_pad) EXPECT_TRUE(pads.insert(pad).second) << name;
    for (const auto& [name, pad] : pl.po_pad) EXPECT_TRUE(pads.insert(pad).second) << name;
}

TEST(PlaceMultilevel, LegalDeterministicAndTagged) {
    const Design d = make_design();
    cad::PlaceOptions opts;
    opts.algorithm = cad::PlaceAlgorithm::Multilevel;
    opts.seed = 3;
    opts.min_coarse_nodes = 4;  // force real levels on the small fixture
    const auto a = cad::place(d.pd, d.md, d.arch, opts);
    const auto b = cad::place(d.pd, d.md, d.arch, opts);
    expect_legal(a, d.arch);
    EXPECT_EQ(a.engine, cad::PlaceEngine::Multilevel);
    EXPECT_GT(a.final_cost, 0.0);
    ASSERT_EQ(a.cluster_loc.size(), b.cluster_loc.size());
    for (std::size_t i = 0; i < a.cluster_loc.size(); ++i)
        EXPECT_TRUE(a.cluster_loc[i] == b.cluster_loc[i]) << "cluster " << i;
    EXPECT_EQ(a.pi_pad, b.pi_pad);
    EXPECT_EQ(a.po_pad, b.po_pad);
    EXPECT_EQ(a.final_cost, b.final_cost);
}

TEST(PlaceMultilevel, PerLevelTelemetryDescribesTheVCycle) {
    const Design d = make_design();
    cad::PlaceOptions opts;
    opts.algorithm = cad::PlaceAlgorithm::Multilevel;
    opts.seed = 3;
    opts.min_coarse_nodes = 4;
    opts.polish_rounds = 0;
    const auto pl = cad::place(d.pd, d.md, d.arch, opts);
    const auto& levels = pl.analytical.levels;
    ASSERT_GE(levels.size(), 2u) << "expected a real V-cycle on the fixture";
    // Coarsest first: node counts grow down the descent and the finest
    // entry is the model itself.
    for (std::size_t l = 1; l < levels.size(); ++l)
        EXPECT_LT(levels[l - 1].nodes, levels[l].nodes) << "level " << l;
    EXPECT_EQ(levels.back().nodes, static_cast<std::uint64_t>(pl.cluster_loc.size()));
    int solver_passes = 0;
    int spread_passes = 0;
    std::uint64_t iters = 0;
    for (const cad::LevelStats& ls : levels) {
        EXPECT_GT(ls.nets, 0u);
        EXPECT_GT(ls.solver_passes, 0);
        solver_passes += ls.solver_passes;
        spread_passes += ls.spread_passes;
        iters += ls.solver_iterations;
    }
    // The aggregate counters are exactly the per-level sums.
    EXPECT_EQ(pl.analytical.solver_passes, solver_passes);
    EXPECT_EQ(pl.analytical.spread_passes, spread_passes);
    EXPECT_EQ(pl.analytical.solver_iterations, iters);
    // The full schedule ran only at the coarsest level.
    for (std::size_t l = 1; l < levels.size(); ++l)
        EXPECT_LT(levels[l].solver_passes, levels[0].solver_passes) << "level " << l;
}

TEST(PlaceMultilevel, FlatEngineReportsNoLevels) {
    const Design d = make_design();
    cad::PlaceOptions opts;
    opts.algorithm = cad::PlaceAlgorithm::Analytical;
    opts.seed = 3;
    const auto pl = cad::place(d.pd, d.md, d.arch, opts);
    EXPECT_EQ(pl.engine, cad::PlaceEngine::Analytical);
    EXPECT_TRUE(pl.analytical.levels.empty());
}

}  // namespace
