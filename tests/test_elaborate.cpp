// Tests of the bitstream -> netlist elaborator: reconstruction fidelity,
// delay annotation plumbing and rejection of ill-formed configurations.
#include <gtest/gtest.h>

#include "asynclib/adders.hpp"
#include "base/check.hpp"
#include "cad/flow.hpp"
#include "core/elaborate.hpp"
#include "netlist/analyze.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace afpga;
using core::ArchSpec;
using core::Bitstream;
using core::PadMode;
using core::RRGraph;
using netlist::CellFunc;
using netlist::Logic;
using netlist::NetId;

/// Hand-program a fabric: pad0 -> PLB(0,0) LE0 half A (inverter) -> pad N.
struct HandProgrammed {
    ArchSpec arch;
    std::shared_ptr<RRGraph> rr;
    std::shared_ptr<Bitstream> bits;
    std::uint32_t in_pad = 0;
    std::uint32_t out_pad = 0;
};

HandProgrammed program_inverter() {
    HandProgrammed h;
    h.arch.width = 2;
    h.arch.height = 2;
    h.rr = std::make_shared<RRGraph>(h.arch);
    h.bits = std::make_shared<Bitstream>(h.arch, h.rr->num_edges());

    // Route pad0's opin to some ipin of PLB(0,0) by walking the graph.
    h.in_pad = 0;
    const std::uint32_t start = h.rr->pad_opin(h.in_pad);
    // BFS storing the edge used to reach each node.
    std::vector<std::uint32_t> via(h.rr->num_nodes(), UINT32_MAX);
    std::vector<std::uint32_t> q{start};
    std::uint32_t entry_ipin = UINT32_MAX;
    std::vector<bool> seen(h.rr->num_nodes(), false);
    seen[start] = true;
    while (!q.empty() && entry_ipin == UINT32_MAX) {
        const std::uint32_t n = q.front();
        q.erase(q.begin());
        for (std::uint32_t e : h.rr->out_edges(n)) {
            const std::uint32_t to = h.rr->edge_target(e);
            if (seen[to]) continue;
            seen[to] = true;
            via[to] = e;
            const auto& nd = h.rr->node(to);
            if (nd.kind == core::RRKind::Ipin && !nd.is_pad && nd.x == 0 && nd.y == 0) {
                entry_ipin = to;
                break;
            }
            if (nd.kind != core::RRKind::Ipin) q.push_back(to);
        }
    }
    base::check(entry_ipin != UINT32_MAX, "test: no path pad->PLB");
    std::vector<bool> used_by_input(h.rr->num_nodes(), false);
    for (std::uint32_t n = entry_ipin; via[n] != UINT32_MAX; n = h.rr->edge_source(via[n])) {
        h.bits->set_edge(via[n], true);
        used_by_input[n] = true;
        used_by_input[h.rr->edge_source(via[n])] = true;
    }
    const std::uint32_t in_pin = h.rr->pin_index(entry_ipin);

    // LE0 half A = INV(i_pin). Program the half over pin `in_pin`... pins are
    // LE-local; route the PLB input pin to LE0 pin 0 through the IM.
    auto& plb = h.bits->plb({0, 0});
    plb.le[0].tt_a = 0;
    // tt over i0..i5 with function = NOT(i0): rows where i0==0 are 1.
    for (std::uint32_t m = 0; m < 64; ++m)
        if (!(m & 1)) plb.le[0].tt_a |= 1ULL << m;
    plb.im.connect(h.arch, h.arch.im_sink_le_input(0, 0), h.arch.im_src_plb_input(in_pin));

    // LE0 output O0 -> some PLB output pin -> route to an output pad.
    // Find a pad ipin reachable from an opin of PLB(0,0).
    std::uint32_t chosen_opin = UINT32_MAX;
    std::uint32_t exit_pad = UINT32_MAX;
    for (std::uint32_t p = 0; p < h.arch.plb_outputs && exit_pad == UINT32_MAX; ++p) {
        const std::uint32_t o = h.rr->plb_opin({0, 0}, p);
        std::fill(seen.begin(), seen.end(), false);
        std::fill(via.begin(), via.end(), UINT32_MAX);
        std::vector<std::uint32_t> q2{o};
        seen[o] = true;
        while (!q2.empty() && exit_pad == UINT32_MAX) {
            const std::uint32_t n = q2.front();
            q2.erase(q2.begin());
            for (std::uint32_t e : h.rr->out_edges(n)) {
                const std::uint32_t to = h.rr->edge_target(e);
                if (seen[to] || used_by_input[to]) continue;  // avoid shorts
                seen[to] = true;
                via[to] = e;
                const auto& nd = h.rr->node(to);
                if (nd.kind == core::RRKind::Ipin && nd.is_pad &&
                    h.rr->pad_of(to) != h.in_pad) {
                    exit_pad = h.rr->pad_of(to);
                    chosen_opin = o;
                    for (std::uint32_t k = to; via[k] != UINT32_MAX;
                         k = h.rr->edge_source(via[k]))
                        h.bits->set_edge(via[k], true);
                    break;
                }
                if (nd.kind != core::RRKind::Ipin) q2.push_back(to);
            }
        }
    }
    base::check(exit_pad != UINT32_MAX, "test: no path PLB->pad");
    h.out_pad = exit_pad;
    plb.im.connect(h.arch, h.arch.im_sink_plb_output(h.rr->pin_index(chosen_opin)),
                   h.arch.im_src_le_output(0, 0));
    h.bits->set_pad_mode(h.in_pad, PadMode::Input);
    h.bits->set_pad_mode(h.out_pad, PadMode::Output);
    return h;
}

TEST(Elaborate, HandProgrammedInverterWorks) {
    const HandProgrammed h = program_inverter();
    const auto design = core::elaborate(*h.rr, *h.bits,
                                        {{h.in_pad, "x"}, {h.out_pad, "y"}});
    ASSERT_EQ(design.nl.primary_inputs().size(), 1u);
    ASSERT_EQ(design.nl.primary_outputs().size(), 1u);
    // Functionally an inverter.
    const auto funcs = netlist::extract_functions(design.nl);
    EXPECT_EQ(funcs[0], netlist::TruthTable::from_function(
                            1, [](std::uint32_t m) { return (m & 1) == 0; }));
    // Wire delays were annotated for the routed input.
    EXPECT_FALSE(design.wire_delays.empty());
    const auto resolved = core::resolve_wire_delays(design);
    EXPECT_EQ(resolved.size(), design.wire_delays.size());
    for (const auto& d : resolved) EXPECT_GT(d.delay_ps, 0);
}

TEST(Elaborate, UnroutedConfiguredPinRejected) {
    ArchSpec arch;
    arch.width = 2;
    arch.height = 2;
    const RRGraph rr(arch);
    Bitstream bits(arch, rr.num_edges());
    auto& plb = bits.plb({0, 0});
    plb.le[0].tt_a = 0x2;  // i0
    // LE input listens to PLB input pin 0, but nothing routes to it; the LE
    // output is referenced so the cell gets built.
    plb.im.connect(arch, arch.im_sink_le_input(0, 0), arch.im_src_plb_input(0));
    plb.im.connect(arch, arch.im_sink_plb_output(0), arch.im_src_le_output(0, 0));
    EXPECT_THROW((void)core::elaborate(rr, bits), base::Error);
}

TEST(Elaborate, OutputPadWithoutRouteRejected) {
    ArchSpec arch;
    arch.width = 2;
    arch.height = 2;
    const RRGraph rr(arch);
    Bitstream bits(arch, rr.num_edges());
    bits.set_pad_mode(3, PadMode::Output);
    EXPECT_THROW((void)core::elaborate(rr, bits), base::Error);
}

TEST(Elaborate, RoutingShortRejected) {
    // Enable edges so two different driver opins reach the same wire.
    ArchSpec arch;
    arch.width = 2;
    arch.height = 1;
    const RRGraph rr(arch);
    Bitstream bits(arch, rr.num_edges());
    // Make both PLBs drive output pin 0 into their first Fc wire; pick the
    // first out-edges of two distinct opins that share a target wire. To keep
    // it simple: enable ALL edges out of two opins and all wire-wire edges —
    // a short is then guaranteed on the shared channel.
    auto enable_all_from = [&](std::uint32_t node) {
        for (std::uint32_t e : rr.out_edges(node)) bits.set_edge(e, true);
    };
    enable_all_from(rr.plb_opin({0, 0}, 0));
    enable_all_from(rr.plb_opin({1, 0}, 0));
    // Wire->wire edges along the bottom channel:
    for (std::uint32_t n = 0; n < rr.num_nodes(); ++n) {
        const auto& nd = rr.node(n);
        if (nd.kind == core::RRKind::ChanX || nd.kind == core::RRKind::ChanY)
            enable_all_from(n);
    }
    // Give both drivers something to drive (reference LE outputs).
    for (std::uint32_t x = 0; x < 2; ++x) {
        auto& plb = bits.plb({x, 0});
        plb.le[0].tt_a = 0x1;  // const-ish; support empty is fine for driver
        plb.im.connect(arch, arch.im_sink_plb_output(0), arch.im_src_le_output(0, 0));
    }
    EXPECT_THROW((void)core::elaborate(rr, bits), base::Error);
}

TEST(Elaborate, FlowNamesSurviveToNetlist) {
    auto adder = asynclib::make_qdi_adder(1);
    const auto fr = cad::run_flow(adder.nl, adder.hints, ArchSpec{}, {});
    const auto design = fr.elaborate();
    // All PIs/POs named as in the source design.
    EXPECT_TRUE(design.nl.find_net("a[0].t").valid());
    EXPECT_TRUE(design.nl.find_net("cin.f").valid());
    bool has_done = false;
    for (const auto& [name, net] : design.nl.primary_outputs()) has_done |= (name == "done");
    EXPECT_TRUE(has_done);
}

TEST(Elaborate, CellCountMatchesUsedLeOutputs) {
    auto adder = asynclib::make_qdi_adder(1);
    const auto fr = cad::run_flow(adder.nl, adder.hints, ArchSpec{}, {});
    const auto design = fr.elaborate();
    std::size_t le_outputs = 0;
    for (const auto& le : fr.mapped.les) le_outputs += le.used_outputs();
    // Elaborated cells = LE-output LUTs + PDEs + const0 + const1.
    const std::size_t expected = le_outputs + fr.mapped.pdes.size() + 2;
    EXPECT_EQ(design.nl.num_cells(), expected);
}

}  // namespace
