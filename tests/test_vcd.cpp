// VCD writer coverage: byte-exact golden-file regression of a small
// deterministic trace, selected-net tracing, and failure behaviour.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "base/check.hpp"
#include "netlist/netlist.hpp"
#include "sim/simulator.hpp"
#include "sim/vcd.hpp"

namespace {

using namespace afpga;
using netlist::CellFunc;
using netlist::Logic;
using netlist::NetId;
using netlist::Netlist;

std::string read_file(const std::string& path) {
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "cannot open " << path;
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

// A half adder with fixed stimuli; every transition time is determined by
// the netlist's default cell delays, so the dump is byte-stable.
struct HalfAdderTrace {
    Netlist nl{"halfadd"};
    NetId a, b, s, c;
    HalfAdderTrace() {
        a = nl.add_input("a");
        b = nl.add_input("b");
        s = nl.add_cell(CellFunc::Xor, "s", {a, b});
        c = nl.add_cell(CellFunc::And, "c", {a, b});
        nl.add_output("s", s);
        nl.add_output("c", c);
    }
    void drive(sim::Simulator& sim) const {
        sim.run();
        sim.schedule_pi(a, Logic::T, 100);
        sim.schedule_pi(b, Logic::T, 200);
        sim.schedule_pi(a, Logic::F, 300);
        sim.run();
    }
};

TEST(Vcd, GoldenHalfAdderTrace) {
    HalfAdderTrace fx;
    sim::Simulator sim(fx.nl);
    const std::string path = "afpga_vcd_golden_out.vcd";
    {
        sim::VcdWriter vcd(sim, path);
        fx.drive(sim);
    }
    const std::string got = read_file(path);
    const std::string want = read_file(std::string(AFPGA_TEST_DATA_DIR) + "/half_adder.vcd");
    ASSERT_EQ(got, want) << "VCD output drifted from tests/golden/half_adder.vcd;\n"
                         << "if the new format is intentional, regenerate the golden file\n"
                         << "by copying " << path << " (left in place) over it.";
    std::remove(path.c_str());
}

TEST(Vcd, TracesOnlyRequestedNets) {
    HalfAdderTrace fx;
    sim::Simulator sim(fx.nl);
    const std::string path = "afpga_vcd_subset_out.vcd";
    {
        sim::VcdWriter vcd(sim, path, {fx.s});
        fx.drive(sim);
    }
    const std::string got = read_file(path);
    std::size_t vars = 0;
    for (std::size_t p = got.find("$var"); p != std::string::npos; p = got.find("$var", p + 1))
        ++vars;
    EXPECT_EQ(vars, 1u);
    EXPECT_NE(got.find("$var wire 1 ! s $end"), std::string::npos);
    EXPECT_EQ(got.find(" a $end"), std::string::npos);
    std::remove(path.c_str());
}

TEST(Vcd, UnwritablePathThrows) {
    HalfAdderTrace fx;
    sim::Simulator sim(fx.nl);
    EXPECT_THROW(sim::VcdWriter(sim, "/nonexistent-dir/trace.vcd"), base::Error);
}

}  // namespace
