// Tests for the event-driven simulator: gate semantics under time, inertial
// vs transport delays, sequential cells, sink delays, monitors.
#include <gtest/gtest.h>

#include "netlist/netlist.hpp"
#include "sim/monitors.hpp"
#include "sim/simulator.hpp"

namespace {

using afpga::netlist::CellFunc;
using afpga::netlist::Logic;
using afpga::netlist::NetId;
using afpga::netlist::Netlist;
using afpga::sim::InitState;
using afpga::sim::Simulator;

TEST(Simulator, InverterSettlesAtTimeZero) {
    Netlist nl;
    const NetId a = nl.add_input("a");
    const NetId y = nl.add_cell(CellFunc::Inv, "inv", {a});
    nl.add_output("y", y);
    Simulator sim(nl);
    const auto r = sim.run();
    EXPECT_TRUE(r.quiescent);
    EXPECT_EQ(sim.value(y), Logic::T);  // INV of the all-zero init state
}

TEST(Simulator, PiChangePropagatesWithDelay) {
    Netlist nl;
    const NetId a = nl.add_input("a");
    const NetId y = nl.add_cell(CellFunc::Buf, "buf", {a});  // 50ps
    nl.add_output("y", y);
    Simulator sim(nl);
    sim.run();
    sim.schedule_pi(a, Logic::T, 10);
    const auto r = sim.run();
    EXPECT_EQ(sim.value(y), Logic::T);
    EXPECT_EQ(r.end_time_ps, 60);  // 10 + 50
}

TEST(Simulator, ChainDelayAccumulates) {
    Netlist nl;
    const NetId a = nl.add_input("a");
    NetId n = a;
    for (int i = 0; i < 4; ++i) n = nl.add_cell(CellFunc::Buf, "b" + std::to_string(i), {n});
    nl.add_output("y", n);
    Simulator sim(nl);
    sim.run();
    sim.schedule_pi(a, Logic::T);
    const auto r = sim.run();
    EXPECT_EQ(r.end_time_ps, 200);
}

TEST(Simulator, InertialDelaySwallowsShortPulse) {
    Netlist nl;
    const NetId a = nl.add_input("a");
    const NetId y = nl.add_cell(CellFunc::Buf, "buf", {a});  // 50ps inertial
    nl.add_output("y", y);
    Simulator sim(nl);
    sim.run();
    // 20ps pulse, shorter than the gate delay: must not appear at the output.
    sim.schedule_pi(a, Logic::T, 0);
    sim.schedule_pi(a, Logic::F, 20);
    sim.run();
    EXPECT_EQ(sim.value(y), Logic::F);
    EXPECT_EQ(sim.transitions(y), 0u);
}

TEST(Simulator, TransportDelayPropagatesEveryEdge) {
    Netlist nl;
    const NetId a = nl.add_input("a");
    const NetId y = nl.add_cell(CellFunc::Delay, "dly", {a});
    nl.set_cell_delay(nl.driver_of(y), 500);
    nl.add_output("y", y);
    Simulator sim(nl);
    sim.run();
    sim.schedule_pi(a, Logic::T, 0);
    sim.schedule_pi(a, Logic::F, 100);  // 100ps pulse through 500ps transport
    sim.run();
    EXPECT_EQ(sim.transitions(y), 2u);  // both edges arrive
    EXPECT_EQ(sim.value(y), Logic::F);
}

TEST(Simulator, MullerCElementJoinsAndHolds) {
    Netlist nl;
    const NetId a = nl.add_input("a");
    const NetId b = nl.add_input("b");
    const NetId c = nl.add_cell(CellFunc::C, "c", {a, b});
    nl.add_output("c", c);
    Simulator sim(nl);
    sim.run();
    sim.schedule_pi(a, Logic::T);
    sim.run();
    EXPECT_EQ(sim.value(c), Logic::F);  // only one input high: hold
    sim.schedule_pi(b, Logic::T);
    sim.run();
    EXPECT_EQ(sim.value(c), Logic::T);  // join
    sim.schedule_pi(a, Logic::F);
    sim.run();
    EXPECT_EQ(sim.value(c), Logic::T);  // hold
    sim.schedule_pi(b, Logic::F);
    sim.run();
    EXPECT_EQ(sim.value(c), Logic::F);  // join down
}

TEST(Simulator, LatchCapturesOnEnableFall) {
    Netlist nl;
    const NetId d = nl.add_input("d");
    const NetId en = nl.add_input("en");
    const NetId q = nl.add_cell(CellFunc::Latch, "q", {d, en});
    nl.add_output("q", q);
    Simulator sim(nl);
    sim.run();
    sim.schedule_pi(en, Logic::T);
    sim.schedule_pi(d, Logic::T, 100);
    sim.run();
    EXPECT_EQ(sim.value(q), Logic::T);  // transparent
    sim.schedule_pi(en, Logic::F);
    sim.run();
    sim.schedule_pi(d, Logic::F);
    sim.run();
    EXPECT_EQ(sim.value(q), Logic::T);  // held
}

TEST(Simulator, LoopedLutImplementsCElement) {
    // The paper's memory-element mechanism: a LUT with its own output looped
    // back (through the IM in the real fabric) behaves as a Muller C.
    using afpga::netlist::cell_function_with_feedback;
    Netlist nl;
    const NetId a = nl.add_input("a");
    const NetId b = nl.add_input("b");
    const auto maj = cell_function_with_feedback(CellFunc::C, 2);
    const NetId c = nl.add_lut("looped", maj, {a, b, a});  // placeholder 3rd pin
    nl.rewire_input(nl.driver_of(c), 2, c);                // close the loop
    nl.add_output("c", c);
    Simulator sim(nl);
    sim.run();
    sim.schedule_pi(a, Logic::T);
    sim.run();
    EXPECT_EQ(sim.value(c), Logic::F);
    sim.schedule_pi(b, Logic::T);
    sim.run();
    EXPECT_EQ(sim.value(c), Logic::T);
    sim.schedule_pi(a, Logic::F);
    sim.run();
    EXPECT_EQ(sim.value(c), Logic::T);  // holds through the loop
    sim.schedule_pi(b, Logic::F);
    sim.run();
    EXPECT_EQ(sim.value(c), Logic::F);
}

TEST(Simulator, SinkDelaySkewsOneFanoutBranch) {
    Netlist nl;
    const NetId a = nl.add_input("a");
    const NetId y0 = nl.add_cell(CellFunc::Buf, "y0", {a});
    const NetId y1 = nl.add_cell(CellFunc::Buf, "y1", {a});
    nl.add_output("y0", y0);
    nl.add_output("y1", y1);
    Simulator sim(nl);
    sim.run();
    // a's sink 0 feeds y0, sink 1 feeds y1; skew branch 1 by 300ps.
    sim.set_sink_delay(a, 1, 300);
    sim.schedule_pi(a, Logic::T);
    auto r = sim.run_until(y0, Logic::T);
    EXPECT_EQ(r.end_time_ps, 50);
    r = sim.run_until(y1, Logic::T);
    EXPECT_EQ(r.end_time_ps, 350);
}

TEST(Simulator, RunUntilStopsEarly) {
    Netlist nl;
    const NetId a = nl.add_input("a");
    NetId n = a;
    for (int i = 0; i < 10; ++i) n = nl.add_cell(CellFunc::Buf, "b" + std::to_string(i), {n});
    nl.add_output("y", n);
    Simulator sim(nl);
    sim.run();
    sim.schedule_pi(a, Logic::T);
    const NetId mid = nl.find_net("b4");
    const auto r = sim.run_until(mid, Logic::T);
    EXPECT_FALSE(r.quiescent);
    EXPECT_EQ(sim.value(mid), Logic::T);
    EXPECT_EQ(sim.value(n), Logic::F);  // tail not yet reached
}

TEST(Simulator, OscillationHitsBudget) {
    Netlist nl;
    const NetId a = nl.add_input("a");
    const NetId x = nl.add_cell(CellFunc::Nand, "x", {a, a});
    nl.rewire_input(nl.driver_of(x), 1, x);  // ring oscillator
    nl.add_output("x", x);
    Simulator sim(nl);
    sim.schedule_pi(a, Logic::T);
    sim.set_event_budget(10'000);
    const auto r = sim.run();
    EXPECT_TRUE(r.budget_exceeded);
}

TEST(Simulator, AllXInitStaysXForUndrivenLogic) {
    Netlist nl;
    const NetId a = nl.add_input("a");
    const NetId y = nl.add_cell(CellFunc::Xor, "y", {a, a});
    nl.add_output("y", y);
    Simulator sim(nl, InitState::AllX);
    sim.run();
    EXPECT_EQ(sim.value(y), Logic::X);
    sim.schedule_pi(a, Logic::T);
    sim.run();
    EXPECT_EQ(sim.value(y), Logic::F);  // XOR(a,a) resolves once a is known
}

TEST(GlitchMonitor, DetectsNarrowPulse) {
    Netlist nl;
    const NetId a = nl.add_input("a");
    const NetId y = nl.add_cell(CellFunc::Delay, "y", {a});
    nl.set_cell_delay(nl.driver_of(y), 10);
    nl.add_output("y", y);
    Simulator sim(nl);
    sim.run();
    afpga::sim::GlitchMonitor mon(sim, {y}, 50);
    sim.schedule_pi(a, Logic::T, 0);
    sim.schedule_pi(a, Logic::F, 20);  // 20ps pulse survives transport delay
    sim.run();
    ASSERT_EQ(mon.glitches().size(), 1u);
    EXPECT_EQ(mon.glitches()[0].width_ps, 20);
}

TEST(GlitchMonitor, CleanSignalNoGlitches) {
    Netlist nl;
    const NetId a = nl.add_input("a");
    const NetId y = nl.add_cell(CellFunc::Buf, "y", {a});
    nl.add_output("y", y);
    Simulator sim(nl);
    sim.run();
    afpga::sim::GlitchMonitor mon(sim, {y}, 50);
    sim.schedule_pi(a, Logic::T, 0);
    sim.schedule_pi(a, Logic::F, 1000);
    sim.run();
    EXPECT_TRUE(mon.glitches().empty());
}

}  // namespace
