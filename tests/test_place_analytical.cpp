// Analytical placement engine: the Tetris legalizer's determinism and
// stats, the B2B solver's option contract, engine tagging, and the race
// winner semantics when the analytical replica joins the anneal pool.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <utility>
#include <vector>

#include "asynclib/adders.hpp"
#include "base/check.hpp"
#include "cad/pack.hpp"
#include "cad/place.hpp"
#include "cad/place_legalize.hpp"
#include "cad/techmap.hpp"
#include "core/archspec.hpp"

namespace {

using namespace afpga;

// --- legalizer --------------------------------------------------------------

TEST(Legalizer, LegalTargetsSnapInPlace) {
    // Solver space: PLB (x, y) sits at (x+1, y+1). Distinct on-grid targets
    // must legalize to exactly those sites with zero displacement.
    const std::vector<double> x = {1.0, 2.0, 3.0, 1.0};
    const std::vector<double> y = {1.0, 1.0, 2.0, 4.0};
    cad::LegalizeStats stats;
    const auto loc = cad::legalize_clusters(x, y, 4, 4, &stats);
    ASSERT_EQ(loc.size(), 4u);
    for (std::size_t i = 0; i < loc.size(); ++i) {
        EXPECT_EQ(loc[i].x, static_cast<std::uint32_t>(x[i] - 1.0)) << i;
        EXPECT_EQ(loc[i].y, static_cast<std::uint32_t>(y[i] - 1.0)) << i;
    }
    EXPECT_EQ(stats.total_displacement, 0u);
    EXPECT_EQ(stats.max_displacement, 0u);
    EXPECT_EQ(stats.displacement_histogram[0], 4u);
}

TEST(Legalizer, CollidingTargetsGetDistinctSitesDeterministically) {
    // Every cluster wants the same spot: the legalizer must spread them to
    // distinct sites, identically on every run, and account for each
    // cluster in the displacement histogram.
    const std::size_t n = 9;
    const std::vector<double> x(n, 2.5), y(n, 2.5);
    cad::LegalizeStats stats;
    const auto a = cad::legalize_clusters(x, y, 5, 5, &stats);
    const auto b = cad::legalize_clusters(x, y, 5, 5);
    ASSERT_EQ(a.size(), n);
    std::set<std::pair<std::uint32_t, std::uint32_t>> sites;
    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_LT(a[i].x, 5u);
        EXPECT_LT(a[i].y, 5u);
        EXPECT_TRUE(sites.insert({a[i].x, a[i].y}).second) << "duplicate site for " << i;
        EXPECT_TRUE(a[i] == b[i]) << "non-deterministic site for " << i;
    }
    std::uint64_t histogram_total = 0;
    for (const auto c : stats.displacement_histogram) histogram_total += c;
    EXPECT_EQ(histogram_total, n);
    EXPECT_GT(stats.total_displacement, 0u);
    EXPECT_GE(stats.max_displacement, 1u);
    EXPECT_DOUBLE_EQ(stats.avg_displacement,
                     static_cast<double>(stats.total_displacement) / static_cast<double>(n));
}

TEST(Legalizer, ThrowsWhenClustersCannotFit) {
    const std::vector<double> x(5, 1.0), y(5, 1.0);
    EXPECT_THROW((void)cad::legalize_clusters(x, y, 2, 2), base::Error);
}

// --- analytical engine ------------------------------------------------------

struct Design {
    cad::MappedDesign md;
    cad::PackedDesign pd;
    core::ArchSpec arch;
};

Design make_design() {
    Design d;
    auto adder = asynclib::make_qdi_adder(2);
    d.md = cad::techmap(adder.nl, adder.hints);
    d.pd = cad::pack(d.md, d.arch);
    return d;
}

void expect_legal(const cad::Placement& pl, const core::ArchSpec& arch) {
    std::set<std::pair<std::uint32_t, std::uint32_t>> sites;
    for (const auto& loc : pl.cluster_loc) {
        EXPECT_LT(loc.x, arch.width);
        EXPECT_LT(loc.y, arch.height);
        EXPECT_TRUE(sites.insert({loc.x, loc.y}).second) << "overlapping clusters";
    }
    std::set<std::uint32_t> pads;
    for (const auto& [name, pad] : pl.pi_pad) EXPECT_TRUE(pads.insert(pad).second) << name;
    for (const auto& [name, pad] : pl.po_pad) EXPECT_TRUE(pads.insert(pad).second) << name;
}

TEST(PlaceAnalytical, LegalDeterministicAndTagged) {
    const Design d = make_design();
    cad::PlaceOptions opts;
    opts.algorithm = cad::PlaceAlgorithm::Analytical;
    opts.seed = 11;
    const auto a = cad::place(d.pd, d.md, d.arch, opts);
    const auto b = cad::place(d.pd, d.md, d.arch, opts);

    expect_legal(a, d.arch);
    EXPECT_EQ(a.engine, cad::PlaceEngine::Analytical);
    EXPECT_TRUE(a.replicas.empty());
    ASSERT_EQ(a.cluster_loc.size(), b.cluster_loc.size());
    for (std::size_t i = 0; i < a.cluster_loc.size(); ++i)
        EXPECT_TRUE(a.cluster_loc[i] == b.cluster_loc[i]) << i;
    EXPECT_EQ(a.pi_pad, b.pi_pad);
    EXPECT_EQ(a.po_pad, b.po_pad);
    EXPECT_EQ(a.final_cost, b.final_cost);

    // The reported cost is the real wirelength of the reported placement.
    EXPECT_DOUBLE_EQ(a.final_cost, cad::placement_wirelength(d.pd, d.md, d.arch, a));

    // Solver/spreader/legalizer telemetry is populated.
    EXPECT_GT(a.analytical.solver_iterations, 0u);
    EXPECT_GT(a.analytical.solver_passes, 0);
    EXPECT_GT(a.analytical.spread_passes, 0);
    EXPECT_GT(a.analytical.pre_legal_cost, 0.0);
    EXPECT_GT(a.analytical.legalized_cost, 0.0);
}

TEST(PlaceAnalytical, SolverOptionCapsAreHonoured) {
    const Design d = make_design();
    cad::PlaceOptions opts;
    opts.algorithm = cad::PlaceAlgorithm::Analytical;
    opts.seed = 11;
    opts.solver_passes = 3;
    opts.solver_max_iters = 7;
    const auto pl = cad::place(d.pd, d.md, d.arch, opts);
    expect_legal(pl, d.arch);
    // solver_passes rebuild+solve passes plus the final targeting solve.
    EXPECT_LE(pl.analytical.solver_passes, 3 + 1);
    // Two axes per pass, each capped at solver_max_iters CG iterations.
    EXPECT_LE(pl.analytical.solver_iterations,
              static_cast<std::uint64_t>(2 * (3 + 1) * 7));
}

TEST(PlaceAnalytical, PolishOffSkipsTheAnneal) {
    const Design d = make_design();
    cad::PlaceOptions opts;
    opts.algorithm = cad::PlaceAlgorithm::Analytical;
    opts.seed = 11;
    opts.polish_rounds = 0;
    const auto pl = cad::place(d.pd, d.md, d.arch, opts);
    expect_legal(pl, d.arch);
    EXPECT_EQ(pl.engine, cad::PlaceEngine::Analytical);
    EXPECT_EQ(pl.moves_tried, 0u);
    EXPECT_EQ(pl.anneal_rounds, 0);
    EXPECT_GT(pl.final_cost, 0.0);
}

// --- race -------------------------------------------------------------------

TEST(PlaceRace, AnalyticalJoinsAsFinalReplicaAndLexMinWins) {
    const Design d = make_design();
    cad::PlaceOptions opts;
    opts.algorithm = cad::PlaceAlgorithm::Race;
    opts.parallel_seeds = 3;
    opts.seed = 5;
    const auto pl = cad::place(d.pd, d.md, d.arch, opts);
    expect_legal(pl, d.arch);

    ASSERT_EQ(pl.replicas.size(), 5u);
    for (std::size_t i = 0; i < 3; ++i)
        EXPECT_EQ(pl.replicas[i].engine, cad::PlaceEngine::Anneal) << i;
    EXPECT_EQ(pl.replicas[3].engine, cad::PlaceEngine::Analytical);
    EXPECT_EQ(pl.replicas[4].engine, cad::PlaceEngine::Multilevel);

    // Winner is the lexicographic minimum of (final_cost, replica index).
    std::size_t expect_winner = 0;
    for (std::size_t i = 1; i < pl.replicas.size(); ++i)
        if (pl.replicas[i].final_cost < pl.replicas[expect_winner].final_cost)
            expect_winner = i;
    EXPECT_EQ(pl.winner_replica, expect_winner);
    EXPECT_EQ(pl.final_cost, pl.replicas[expect_winner].final_cost);
    EXPECT_EQ(pl.engine, pl.replicas[expect_winner].engine);
}

TEST(PlaceRace, PoolSizeNeverChangesTheWinner) {
    const Design d = make_design();
    cad::PlaceOptions opts;
    opts.algorithm = cad::PlaceAlgorithm::Race;
    opts.parallel_seeds = 2;
    opts.seed = 5;
    cad::Placement ref;
    for (unsigned t : {1u, 2u, 4u, 8u}) {
        opts.threads = t;
        auto pl = cad::place(d.pd, d.md, d.arch, opts);
        if (t == 1u) {
            ref = std::move(pl);
            continue;
        }
        EXPECT_EQ(pl.winner_replica, ref.winner_replica) << t;
        EXPECT_EQ(pl.final_cost, ref.final_cost) << t;
        EXPECT_EQ(pl.engine, ref.engine) << t;
        ASSERT_EQ(pl.cluster_loc.size(), ref.cluster_loc.size());
        for (std::size_t i = 0; i < pl.cluster_loc.size(); ++i)
            EXPECT_TRUE(pl.cluster_loc[i] == ref.cluster_loc[i]) << t << " threads, cluster " << i;
    }
}

}  // namespace
