// Robustness properties: configuration-bit corruption must never produce a
// silently wrong circuit, and the fabric must degrade gracefully as routing
// resources shrink.
#include <gtest/gtest.h>

#include "afpga.hpp"
#include "support/flow_fixtures.hpp"

namespace {

using namespace afpga;

TEST(BitstreamFuzz, AnySingleBitFlipIsDetected) {
    // CRC coverage: flip every byte-aligned bit position of a real bitstream
    // (sampling to keep runtime sane) — deserialisation must throw, never
    // return a quietly different configuration.
    auto adder = asynclib::make_qdi_adder(1);
    const auto fr = cad::run_flow(adder.nl, adder.hints, core::paper_arch(), {});
    const auto bits = fr.bits->serialize();
    base::Rng rng(404);
    for (int k = 0; k < 200; ++k) {
        auto corrupted = bits;
        corrupted.flip(static_cast<std::size_t>(rng.below(bits.size())));
        EXPECT_THROW((void)core::Bitstream::deserialize(core::paper_arch(), corrupted),
                     base::Error)
            << "flip " << k << " went undetected";
    }
}

TEST(BitstreamFuzz, TruncationDetected) {
    auto adder = asynclib::make_qdi_adder(1);
    const auto fr = cad::run_flow(adder.nl, adder.hints, core::paper_arch(), {});
    const auto bits = fr.bits->serialize();
    base::BitVector shorter;
    for (std::size_t i = 0; i + 64 < bits.size(); ++i) shorter.push_back(bits.get(i));
    EXPECT_THROW((void)core::Bitstream::deserialize(core::paper_arch(), shorter),
                 base::Error);
}

class ChannelWidthSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ChannelWidthSweep, RoutabilityIsMonotonicInWidth) {
    // The 2-bit QDI adder must route on generous channels; on starved ones
    // the flow must fail with a routing error, never crash or mis-program.
    core::ArchSpec arch = core::paper_arch();
    arch.channel_width = GetParam();
    auto adder = asynclib::make_qdi_adder(2);
    cad::FlowOptions opts;
    opts.route.max_iterations = 25;
    try {
        const auto fr = cad::run_flow(adder.nl, adder.hints, arch, opts);
        // Success: the implementation must be functionally correct.
        testsupport::PostRouteSim prs(fr);
        const auto iface = testsupport::qdi_adder_iface(prs.design.nl, 2);
        EXPECT_EQ(sim::qdi_apply_token(*prs.sim, iface, 0b1'11'01), 0b001u + 0b11u + 1u);
    } catch (const base::Error& e) {
        // Failure is acceptable only as an explicit routing/congestion error.
        EXPECT_NE(std::string(e.what()).find("routing failed"), std::string::npos)
            << e.what();
        EXPECT_LE(GetParam(), 8u) << "wide channels must route";
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, ChannelWidthSweep, ::testing::Values(4u, 6u, 8u, 12u, 16u));

TEST(GracefulFailure, TooSmallFabricSaysSo) {
    core::ArchSpec arch = core::paper_arch();
    arch.width = 2;
    arch.height = 2;
    auto adder = asynclib::make_qdi_adder(4);
    try {
        (void)cad::run_flow(adder.nl, adder.hints, arch, {});
        FAIL() << "expected placement failure";
    } catch (const base::Error& e) {
        EXPECT_NE(std::string(e.what()).find("PLBs"), std::string::npos);
    }
}

TEST(GracefulFailure, TooFewPadsSaysSo) {
    core::ArchSpec arch = core::paper_arch();
    arch.width = 2;
    arch.height = 2;
    arch.pads_per_iob = 1;  // 8 pads for a design with 13 PIs + 5 POs + done
    auto adder = asynclib::make_qdi_adder(1);
    EXPECT_THROW((void)cad::run_flow(adder.nl, adder.hints, arch, {}), base::Error);
}

}  // namespace
