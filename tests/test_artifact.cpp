// The content-addressing layer: Fingerprint/key hygiene, netlist and
// option-struct fingerprints (the exhaustive-field regression the artifact
// cache's soundness rests on), and ArtifactStore semantics: the two cache
// tiers (LRU byte budget, disk blobs), the per-architecture RR memo and
// their concurrency contracts (this file runs under the TSan CI leg).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <future>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "asynclib/adders.hpp"
#include "base/check.hpp"
#include "cad/artifact.hpp"
#include "cad/fingerprint.hpp"
#include "cad/flow.hpp"
#include "cad/serialize.hpp"
#include "core/archspec.hpp"

namespace {

using namespace afpga;
namespace fs = std::filesystem;

/// A fresh per-test scratch directory for disk-tier tests, removed on exit.
class ScratchDir {
public:
    ScratchDir() {
        const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
        path_ = fs::temp_directory_path() /
                (std::string("afpga_artifact_") + info->test_suite_name() + "_" + info->name());
        fs::remove_all(path_);
    }
    ~ScratchDir() {
        std::error_code ec;
        fs::remove_all(path_, ec);
    }
    [[nodiscard]] std::string str() const { return path_.string(); }
    [[nodiscard]] const fs::path& path() const { return path_; }

private:
    fs::path path_;
};

/// A Placement whose budget cost and identity are easy to control: the
/// trajectory payload dominates approx_bytes and `final_cost` tags which
/// artifact this is.
std::shared_ptr<const cad::Placement> make_placement(double tag, std::size_t traj_len = 0) {
    cad::Placement pl;
    pl.final_cost = tag;
    pl.cost_trajectory.assign(traj_len, tag);
    return std::make_shared<const cad::Placement>(std::move(pl));
}

// ---------------------------------------------------------------------------
// Fingerprint
// ---------------------------------------------------------------------------

TEST(Fingerprint, OrderAndValueSensitive) {
    auto digest = [](auto... vs) {
        cad::Fingerprint f;
        (f.mix(vs), ...);
        return f.digest();
    };
    EXPECT_NE(digest(1, 2), digest(2, 1));
    EXPECT_NE(digest(1), digest(1, 0));
    EXPECT_NE(digest(0.5), digest(0.25));
    EXPECT_NE(digest(-0.0), digest(0.0));  // exact bit patterns
    EXPECT_EQ(digest(std::uint64_t{7}, true), digest(std::uint64_t{7}, true));
}

TEST(Fingerprint, StringsArePrefixUnambiguous) {
    auto digest = [](std::string_view a, std::string_view b) {
        cad::Fingerprint f;
        f.mix(a).mix(b);
        return f.digest();
    };
    EXPECT_NE(digest("ab", "c"), digest("a", "bc"));
    EXPECT_NE(digest("", "x"), digest("x", ""));
    EXPECT_EQ(digest("route", "x"), digest("route", "x"));
}

TEST(Fingerprint, ChainKeyDependsOnEveryPart) {
    const cad::ArtifactKey base = 0x1234;
    const cad::ArtifactKey k = cad::chain_key(base, "pack", 7);
    EXPECT_NE(k, cad::chain_key(base + 1, "pack", 7));
    EXPECT_NE(k, cad::chain_key(base, "place", 7));
    EXPECT_NE(k, cad::chain_key(base, "pack", 8));
    EXPECT_EQ(k, cad::chain_key(0x1234, "pack", 7));
}

// ---------------------------------------------------------------------------
// Netlist / hints fingerprints
// ---------------------------------------------------------------------------

TEST(NetlistFingerprint, DeterministicAcrossGeneratorRuns) {
    const auto a = asynclib::make_qdi_adder(2);
    const auto b = asynclib::make_qdi_adder(2);
    EXPECT_EQ(cad::fingerprint_netlist(a.nl), cad::fingerprint_netlist(b.nl));
    EXPECT_EQ(cad::fingerprint_hints(a.hints), cad::fingerprint_hints(b.hints));
}

TEST(NetlistFingerprint, DistinguishesDesignsAndHints) {
    const auto a2 = asynclib::make_qdi_adder(2);
    const auto a3 = asynclib::make_qdi_adder(3);
    EXPECT_NE(cad::fingerprint_netlist(a2.nl), cad::fingerprint_netlist(a3.nl));
    EXPECT_NE(cad::fingerprint_hints(a2.hints), cad::fingerprint_hints(a3.hints));
    EXPECT_NE(cad::fingerprint_hints(a2.hints), cad::fingerprint_hints({}));
}

TEST(NetlistFingerprint, SensitiveToNamesAndStructure) {
    netlist::Netlist a("t");
    const auto ia = a.add_input("x");
    a.add_output("y", a.add_cell(netlist::CellFunc::Inv, "g", {ia}));

    netlist::Netlist b("t");
    const auto ib = b.add_input("x");
    b.add_output("z", b.add_cell(netlist::CellFunc::Inv, "g", {ib}));  // PO renamed

    netlist::Netlist c("t");
    const auto ic = c.add_input("x");
    c.add_output("y", c.add_cell(netlist::CellFunc::Buf, "g", {ic}));  // function changed

    const auto fa = cad::fingerprint_netlist(a);
    EXPECT_NE(fa, cad::fingerprint_netlist(b));
    EXPECT_NE(fa, cad::fingerprint_netlist(c));
}

// ---------------------------------------------------------------------------
// Option-struct fingerprints: every field must feed the digest. Each case
// lists one mutation per field; all resulting fingerprints (plus the
// default's) must be pairwise distinct. The struct-size static_asserts in
// the implementations catch NEW fields at compile time; these tests catch
// a field that exists but was never mixed.
// ---------------------------------------------------------------------------

template <typename Opts, typename... Mutators>
void expect_every_field_counts(Mutators... mutators) {
    std::set<std::uint64_t> seen;
    seen.insert(Opts{}.fingerprint());
    auto apply = [&](auto&& m) {
        Opts o;
        m(o);
        EXPECT_TRUE(seen.insert(o.fingerprint()).second)
            << "a field mutation did not change the fingerprint";
    };
    (apply(mutators), ...);
}

TEST(OptionFingerprint, TechmapEveryFieldCounts) {
    expect_every_field_counts<cad::TechmapOptions>(
        [](auto& o) { o.use_rail_pair_hints = false; },
        [](auto& o) { o.absorb_validity = false; },
        [](auto& o) { o.greedy_pairing = false; },
        [](auto& o) { o.pairing_window = 65; });
}

TEST(OptionFingerprint, PackEveryFieldCounts) {
    expect_every_field_counts<cad::PackOptions>(
        [](auto& o) { o.affinity_clustering = false; });
}

TEST(OptionFingerprint, PlaceEveryFieldCounts) {
    expect_every_field_counts<cad::PlaceOptions>(
        [](auto& o) { o.seed = 2; }, [](auto& o) { o.alpha = 0.8; },
        [](auto& o) { o.moves_scale = 11.0; }, [](auto& o) { o.anneal = false; },
        [](auto& o) { o.incremental = false; },
        [](auto& o) { o.algorithm = cad::PlaceAlgorithm::Analytical; },
        [](auto& o) { o.algorithm = cad::PlaceAlgorithm::Race; },
        [](auto& o) { o.parallel_seeds = 2; }, [](auto& o) { o.threads = 3; },
        [](auto& o) { o.max_rounds = 77; }, [](auto& o) { o.solver_passes = 5; },
        [](auto& o) { o.solver_max_iters = 60; }, [](auto& o) { o.polish_rounds = 3; },
        [](auto& o) { o.solver_tolerance = 1e-6; },
        [](auto& o) { o.anchor_weight = 0.25; },
        [](auto& o) { o.algorithm = cad::PlaceAlgorithm::Multilevel; },
        [](auto& o) { o.coarsen_ratio = 0.4; }, [](auto& o) { o.min_coarse_nodes = 32; },
        [](auto& o) { o.max_levels = 4; });
}

TEST(OptionFingerprint, RouterEveryFieldCounts) {
    expect_every_field_counts<cad::RouterOptions>(
        [](auto& o) { o.max_iterations = 41; }, [](auto& o) { o.pres_fac_first = 0.7; },
        [](auto& o) { o.pres_fac_mult = 1.8; }, [](auto& o) { o.hist_fac = 1.5; },
        [](auto& o) { o.astar_fac = 0.5; }, [](auto& o) { o.incremental = false; },
        [](auto& o) { o.stall_full_reroute = 5; }, [](auto& o) { o.verbose = true; },
        [](auto& o) { o.threads = 2; }, [](auto& o) { o.bin_margin = 2; },
        [](auto& o) { o.min_bin_dim = 5; });
}

TEST(OptionFingerprint, FlowEverySemanticFieldCounts) {
    expect_every_field_counts<cad::FlowOptions>(
        [](auto& o) { o.seed = 2; },
        [](auto& o) { o.techmap.pairing_window = 65; },
        [](auto& o) { o.pack.affinity_clustering = false; },
        [](auto& o) { o.place.alpha = 0.8; },
        [](auto& o) { o.route.max_iterations = 41; },
        [](auto& o) { o.pde_extra_margin = 0.5; },
        [](auto& o) { o.verify_mapping = false; });
}

TEST(OptionFingerprint, FlowIgnoresPlumbingFields) {
    const core::ArchSpec arch;
    cad::FlowOptions o;
    const std::uint64_t base = o.fingerprint();
    o.prebuilt_rr = std::make_shared<core::RRGraph>(arch);
    o.artifact_store = std::make_shared<cad::ArtifactStore>();
    EXPECT_EQ(base, o.fingerprint())
        << "prebuilt_rr/artifact_store change where products come from, not what "
           "they are — they must not invalidate artifacts";
}

// ---------------------------------------------------------------------------
// ArtifactStore
// ---------------------------------------------------------------------------

TEST(ArtifactStore, PutGetRoundtripAndStats) {
    cad::ArtifactStore store;
    EXPECT_EQ(store.get<cad::Placement>(1), nullptr);  // miss
    auto pl = std::make_shared<const cad::Placement>();
    store.put(1, pl);
    EXPECT_EQ(store.get<cad::Placement>(1), pl);  // hit
    EXPECT_EQ(store.num_artifacts(), 1u);
    EXPECT_EQ(store.hits(), 1u);
    EXPECT_EQ(store.misses(), 1u);
}

TEST(ArtifactStore, TypeMismatchIsAMiss) {
    cad::ArtifactStore store;
    store.put(7, std::make_shared<const cad::Placement>());
    EXPECT_EQ(store.get<cad::MappedDesign>(7), nullptr);
    EXPECT_EQ(store.get<cad::Placement>(7) != nullptr, true);
}

TEST(ArtifactStore, FirstPublishWins) {
    cad::ArtifactStore store;
    auto first = std::make_shared<const cad::Placement>();
    store.put(3, first);
    store.put(3, std::make_shared<const cad::Placement>());
    EXPECT_EQ(store.get<cad::Placement>(3), first);
    EXPECT_EQ(store.num_artifacts(), 1u);
}

TEST(ArtifactStore, InflightDedupHandsOffToWaiters) {
    cad::ArtifactStore store;
    ASSERT_TRUE(store.begin_compute(9));  // first claimant owns the key

    // A second claimant blocks until the computer publishes + finishes,
    // then sees the published key (false = re-get it).
    std::promise<bool> waiter_saw;
    std::thread waiter(
        [&] { waiter_saw.set_value(store.begin_compute(9)); });
    store.put(9, std::make_shared<const cad::Placement>());
    store.finish_compute(9);
    auto fut = waiter_saw.get_future();
    EXPECT_FALSE(fut.get());
    waiter.join();

    // Published keys are never claimable again.
    EXPECT_FALSE(store.begin_compute(9));
}

TEST(ArtifactStore, FailedComputerPassesOwnershipOn) {
    cad::ArtifactStore store;
    ASSERT_TRUE(store.begin_compute(5));
    store.finish_compute(5);  // computer "failed": finished without put()
    EXPECT_TRUE(store.begin_compute(5));  // the key is claimable again
    store.finish_compute(5);
}

TEST(ArtifactStore, ClearDropsArtifactsAndRrMemo) {
    cad::ArtifactStore store;
    store.put(1, std::make_shared<const cad::Placement>());
    (void)store.rr_for(core::ArchSpec{});
    EXPECT_EQ(store.num_artifacts(), 1u);
    EXPECT_EQ(store.num_rr_graphs(), 1u);
    store.clear();
    EXPECT_EQ(store.num_artifacts(), 0u);
    EXPECT_EQ(store.num_rr_graphs(), 0u);
    EXPECT_EQ(store.get<cad::Placement>(1), nullptr);
    // The store keeps working after a clear.
    store.put(1, std::make_shared<const cad::Placement>());
    EXPECT_NE(store.get<cad::Placement>(1), nullptr);
}

// Regression (cross-type key collision): put() used to map_.emplace, so a
// 64-bit key collision with a differently-typed entry silently dropped the
// recomputed product — every later get() missed, every later put() was
// dropped again: a permanent recompute wedge. The new product must replace
// the colliding entry (and be counted).
TEST(ArtifactStore, PutCollisionAcrossTypesReplaces) {
    cad::ArtifactStore store;
    store.put(7, make_placement(1.0));
    store.put(7, std::make_shared<const cad::MappedDesign>());
    EXPECT_NE(store.get<cad::MappedDesign>(7), nullptr)
        << "colliding publish was dropped: the key is wedged for this type";
    EXPECT_EQ(store.stats().collisions, 1u);
    // Latest writer wins across types; the displaced product is gone.
    EXPECT_EQ(store.get<cad::Placement>(7), nullptr);
    EXPECT_EQ(store.num_artifacts(), 1u);
}

// ---------------------------------------------------------------------------
// Memory tier: byte budget + LRU eviction
// ---------------------------------------------------------------------------

TEST(ArtifactStore, LruEvictsLeastRecentlyUsedUnderByteBudget) {
    const std::size_t one = cad::ArtifactCodec<cad::Placement>::approx_bytes(
        *make_placement(0.0, 1000));
    const std::size_t budget = 2 * one + one / 2;  // room for two, not three
    cad::ArtifactStore store(cad::ArtifactStoreConfig{budget, ""});

    store.put(1, make_placement(1.0, 1000));
    store.put(2, make_placement(2.0, 1000));
    EXPECT_NE(store.get<cad::Placement>(1), nullptr);  // 1 is now more recent than 2
    store.put(3, make_placement(3.0, 1000));           // over budget: evict 2

    EXPECT_EQ(store.get<cad::Placement>(2), nullptr) << "LRU entry should be evicted";
    EXPECT_NE(store.get<cad::Placement>(1), nullptr);
    EXPECT_NE(store.get<cad::Placement>(3), nullptr);
    const auto st = store.stats();
    EXPECT_EQ(st.evictions, 1u);
    EXPECT_EQ(st.num_artifacts, 2u);
    EXPECT_LE(st.resident_bytes, budget);

    // The cap is strict: an artifact larger than the whole budget is
    // admitted-and-evicted immediately. The caller's shared_ptr keeps the
    // product alive; only the cache reference is dropped.
    auto huge = make_placement(9.0, 50000);
    store.put(99, huge);
    EXPECT_EQ(store.get<cad::Placement>(99), nullptr);
    EXPECT_LE(store.stats().resident_bytes, budget);
    EXPECT_EQ(huge->cost_trajectory.size(), 50000u);
}

TEST(ArtifactStore, EvictionNeverInvalidatesReaders) {
    const std::size_t one = cad::ArtifactCodec<cad::Placement>::approx_bytes(
        *make_placement(0.0, 1000));
    cad::ArtifactStore store(cad::ArtifactStoreConfig{3 * one, ""});
    constexpr std::uint64_t kKeys = 200;

    // One writer churns the tiny tier (constant eviction); readers hold the
    // shared_ptrs they win across further churn and verify the content
    // never changes underneath them.
    std::thread writer([&] {
        for (std::uint64_t k = 1; k <= kKeys; ++k)
            store.put(k, make_placement(static_cast<double>(k), 1000));
    });
    std::vector<std::thread> readers;
    for (int r = 0; r < 3; ++r) {
        readers.emplace_back([&] {
            std::vector<std::shared_ptr<const cad::Placement>> held;
            for (std::uint64_t k = 1; k <= kKeys; ++k) {
                if (auto p = store.get<cad::Placement>(k)) {
                    EXPECT_EQ(p->final_cost, static_cast<double>(k));
                    EXPECT_EQ(p->cost_trajectory.size(), 1000u);
                    held.push_back(std::move(p));
                }
            }
            for (std::size_t i = 0; i < held.size(); ++i)
                EXPECT_EQ(held[i]->cost_trajectory.size(), 1000u);
        });
    }
    writer.join();
    for (auto& t : readers) t.join();
    EXPECT_GT(store.stats().evictions, 0u);
    EXPECT_LE(store.stats().resident_bytes, 3 * one);
}

TEST(ArtifactStore, InflightComputeSpansEvictionAndClear) {
    const std::size_t one = cad::ArtifactCodec<cad::Placement>::approx_bytes(
        *make_placement(0.0, 1000));
    cad::ArtifactStore store(cad::ArtifactStoreConfig{2 * one, ""});
    ASSERT_TRUE(store.begin_compute(42));

    std::promise<bool> waiter_claimed;
    std::thread waiter([&] { waiter_claimed.set_value(store.begin_compute(42)); });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));

    // While the compute is in flight: a clear() and enough churn to force
    // evictions. Neither may disturb the claim or the waiter.
    store.clear();
    for (std::uint64_t k = 100; k < 108; ++k)
        store.put(k, make_placement(static_cast<double>(k), 1000));

    store.put(42, make_placement(42.0, 10));
    store.finish_compute(42);
    const bool claimed = waiter_claimed.get_future().get();
    waiter.join();
    if (claimed) {
        // Legal under a tiny budget: the fresh product was evicted before
        // the waiter woke, so ownership passed on. Honor the contract.
        store.finish_compute(42);
    } else {
        const auto got = store.get<cad::Placement>(42);
        ASSERT_NE(got, nullptr);
        EXPECT_EQ(got->final_cost, 42.0);
    }
}

// ---------------------------------------------------------------------------
// Disk tier
// ---------------------------------------------------------------------------

TEST(ArtifactStore, DiskTierRestoresAcrossStores) {
    ScratchDir dir;
    {
        cad::ArtifactStore writer(cad::ArtifactStoreConfig{0, dir.str()});
        writer.put(77, make_placement(3.5, 16));
        EXPECT_EQ(writer.stats().disk_writes, 1u);
    }  // "process restart": the first store is gone, only the blobs remain

    cad::ArtifactStore reader(cad::ArtifactStoreConfig{0, dir.str()});
    cad::ArtifactTier tier = cad::ArtifactTier::Memory;
    const auto got = reader.get<cad::Placement>(77, &tier);
    ASSERT_NE(got, nullptr);
    EXPECT_EQ(tier, cad::ArtifactTier::Disk);
    EXPECT_EQ(got->final_cost, 3.5);
    EXPECT_EQ(got->cost_trajectory.size(), 16u);
    EXPECT_EQ(reader.stats().disk_hits, 1u);

    // The restore was re-admitted: the next get is a memory hit on the
    // exact same object.
    EXPECT_EQ(reader.get<cad::Placement>(77, &tier), got);
    EXPECT_EQ(tier, cad::ArtifactTier::Memory);
}

TEST(ArtifactStore, ClearKeepsDiskTier) {
    ScratchDir dir;
    cad::ArtifactStore store(cad::ArtifactStoreConfig{0, dir.str()});
    store.put(3, make_placement(8.0));
    store.clear();
    EXPECT_EQ(store.num_artifacts(), 0u);
    const auto got = store.get<cad::Placement>(3);
    ASSERT_NE(got, nullptr);
    EXPECT_EQ(got->final_cost, 8.0);
    EXPECT_EQ(store.stats().disk_hits, 1u);
}

TEST(ArtifactStore, DiskBlobTypeMismatchIsAMissNotCorruption) {
    ScratchDir dir;
    {
        cad::ArtifactStore writer(cad::ArtifactStoreConfig{0, dir.str()});
        writer.put(5, make_placement(1.0));
    }
    cad::ArtifactStore reader(cad::ArtifactStoreConfig{0, dir.str()});
    EXPECT_EQ(reader.get<cad::MappedDesign>(5), nullptr);
    const auto st = reader.stats();
    EXPECT_EQ(st.disk_bad_blobs, 0u);  // a foreign type is a miss, not damage
    EXPECT_EQ(st.misses, 1u);
}

TEST(ArtifactStore, CorruptDiskBlobIsAMissNeverACrash) {
    ScratchDir dir;
    {
        cad::ArtifactStore writer(cad::ArtifactStoreConfig{0, dir.str()});
        writer.put(9, make_placement(4.0, 32));
    }
    const fs::path blob = dir.path() / cad::key_hex(9);
    ASSERT_TRUE(fs::exists(blob));
    std::vector<char> original;
    {
        std::ifstream in(blob, std::ios::binary);
        original.assign(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
    }
    ASSERT_GT(original.size(), 48u);

    auto write_blob = [&](const std::vector<char>& bytes) {
        std::ofstream out(blob, std::ios::binary | std::ios::trunc);
        out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    };
    auto expect_miss = [&](std::uint64_t min_bad) {
        cad::ArtifactStore reader(cad::ArtifactStoreConfig{0, dir.str()});
        EXPECT_EQ(reader.get<cad::Placement>(9), nullptr);
        EXPECT_GE(reader.stats().disk_bad_blobs, min_bad);
    };

    // Truncated header.
    write_blob(std::vector<char>(original.begin(), original.begin() + 10));
    expect_miss(1);
    // Truncated payload.
    write_blob(std::vector<char>(original.begin(), original.end() - 8));
    expect_miss(1);
    // Flipped payload byte (checksum catches it).
    {
        std::vector<char> flipped = original;
        const std::size_t last = flipped.size() - 1;
        flipped.at(last) = static_cast<char>(flipped.at(last) ^ 0x5a);
        write_blob(flipped);
        expect_miss(1);
    }
    // Not a blob at all / empty file.
    write_blob({'j', 'u', 'n', 'k'});
    expect_miss(1);
    write_blob({});
    expect_miss(1);

    // The pristine blob still restores.
    write_blob(original);
    cad::ArtifactStore reader(cad::ArtifactStoreConfig{0, dir.str()});
    const auto got = reader.get<cad::Placement>(9);
    ASSERT_NE(got, nullptr);
    EXPECT_EQ(got->final_cost, 4.0);
}

TEST(ArtifactStore, TwoStoresShareOneCacheDirectory) {
    ScratchDir dir;
    cad::ArtifactStore a(cad::ArtifactStoreConfig{0, dir.str()});
    cad::ArtifactStore b(cad::ArtifactStoreConfig{0, dir.str()});
    constexpr std::uint64_t kKeys = 24;

    // Two stores (stand-ins for two processes) publish disjoint halves of a
    // keyspace into one directory, concurrently with cross-reads. Temp-file
    // + rename means a reader sees a complete blob or nothing — never a
    // torn one.
    std::thread ta([&] {
        for (std::uint64_t k = 1; k <= kKeys; k += 2) {
            a.put(k, make_placement(static_cast<double>(k)));
            if (auto p = a.get<cad::Placement>(k + 1)) {
                EXPECT_EQ(p->final_cost, static_cast<double>(k + 1));
            }
        }
    });
    std::thread tb([&] {
        for (std::uint64_t k = 2; k <= kKeys; k += 2) {
            b.put(k, make_placement(static_cast<double>(k)));
            if (auto p = b.get<cad::Placement>(k - 1)) {
                EXPECT_EQ(p->final_cost, static_cast<double>(k - 1));
            }
        }
    });
    ta.join();
    tb.join();

    // After the dust settles every key is readable from BOTH stores.
    for (std::uint64_t k = 1; k <= kKeys; ++k) {
        const auto pa = a.get<cad::Placement>(k);
        const auto pb = b.get<cad::Placement>(k);
        ASSERT_NE(pa, nullptr) << "key " << k;
        ASSERT_NE(pb, nullptr) << "key " << k;
        EXPECT_EQ(pa->final_cost, static_cast<double>(k));
        EXPECT_EQ(pb->final_cost, static_cast<double>(k));
    }
    EXPECT_EQ(a.stats().disk_bad_blobs, 0u);
    EXPECT_EQ(b.stats().disk_bad_blobs, 0u);
}

// ---------------------------------------------------------------------------
// Disk tier GC
// ---------------------------------------------------------------------------

/// Pretend a file was written `age` ago.
void backdate(const fs::path& p, std::chrono::seconds age) {
    fs::last_write_time(p, fs::file_time_type::clock::now() - age);
}

/// The blob files currently in `dir` (excludes temp files).
std::set<std::string> blob_names(const fs::path& dir) {
    std::set<std::string> names;
    for (const auto& e : fs::directory_iterator(dir)) {
        const std::string n = e.path().filename().string();
        if (n.find(".tmp.") == std::string::npos) names.insert(n);
    }
    return names;
}

TEST(ArtifactStore, DiskGcAgePrunesOldBlobsOnly) {
    ScratchDir dir;
    {
        cad::ArtifactStore writer(cad::ArtifactStoreConfig{0, dir.str()});
        writer.put(1, make_placement(1.0));
        writer.put(2, make_placement(2.0));
        writer.put(3, make_placement(3.0));
    }
    backdate(dir.path() / cad::key_hex(1), std::chrono::hours(48));
    backdate(dir.path() / cad::key_hex(2), std::chrono::hours(48));

    // configure() with an age limit runs the prune at startup — the
    // FlowService path.
    cad::ArtifactStore store;
    store.configure(cad::ArtifactStoreConfig{0, dir.str(), 0, /*max age s=*/3600});
    EXPECT_EQ(store.stats().disk_pruned, 2u);
    EXPECT_EQ(blob_names(dir.path()), std::set<std::string>{cad::key_hex(3)});
    EXPECT_EQ(store.get<cad::Placement>(1), nullptr);
    ASSERT_NE(store.get<cad::Placement>(3), nullptr);
}

TEST(ArtifactStore, DiskGcBudgetEvictsOldestFirst) {
    ScratchDir dir;
    {
        cad::ArtifactStore writer(cad::ArtifactStoreConfig{0, dir.str()});
        for (std::uint64_t k = 1; k <= 4; ++k) writer.put(k, make_placement(1.0, 64));
    }
    std::uintmax_t blob_bytes = 0;
    for (std::uint64_t k = 1; k <= 4; ++k) {
        blob_bytes = fs::file_size(dir.path() / cad::key_hex(k));
        // Distinct mtimes, oldest = key 1; key 4 newest.
        backdate(dir.path() / cad::key_hex(k), std::chrono::hours(5 - k));
    }

    // Budget holds exactly two blobs: the two oldest must go.
    cad::ArtifactStore store(
        cad::ArtifactStoreConfig{0, dir.str(), std::size_t{2 * blob_bytes}, 0});
    EXPECT_EQ(store.stats().disk_pruned, 2u);
    const std::set<std::string> want{cad::key_hex(3), cad::key_hex(4)};
    EXPECT_EQ(blob_names(dir.path()), want);
}

TEST(ArtifactStore, DiskGcSweepsStaleTempFilesKeepsFreshOnes) {
    ScratchDir dir;
    cad::ArtifactStore writer(cad::ArtifactStoreConfig{0, dir.str()});
    writer.put(7, make_placement(7.0));

    // A writer that died mid-publish long ago vs one that could still be
    // mid-rename right now.
    const fs::path stale = dir.path() / (cad::key_hex(99) + ".tmp.1234");
    const fs::path fresh = dir.path() / (cad::key_hex(98) + ".tmp.5678");
    std::ofstream(stale) << "half-written";
    std::ofstream(fresh) << "half-written";
    backdate(stale, std::chrono::hours(2));

    writer.prune_disk();  // callable directly, not only via configure()
    EXPECT_FALSE(fs::exists(stale));
    EXPECT_TRUE(fs::exists(fresh));
    EXPECT_TRUE(fs::exists(dir.path() / cad::key_hex(7)));
    // Temp-file sweeping is hygiene, not blob eviction: the counter only
    // tracks pruned blobs.
    EXPECT_EQ(writer.stats().disk_pruned, 0u);
}

TEST(ArtifactStore, DiskGcNoLimitsNoDiskIsANoOp) {
    ScratchDir dir;
    {
        cad::ArtifactStore writer(cad::ArtifactStoreConfig{0, dir.str()});
        writer.put(5, make_placement(5.0));
        backdate(dir.path() / cad::key_hex(5), std::chrono::hours(100));
        writer.prune_disk();  // no budget, no age limit -> nothing to enforce
        EXPECT_TRUE(fs::exists(dir.path() / cad::key_hex(5)));
        EXPECT_EQ(writer.stats().disk_pruned, 0u);
    }
    cad::ArtifactStore memory_only;
    memory_only.prune_disk();  // no disk tier at all
    EXPECT_EQ(memory_only.stats().disk_pruned, 0u);
}

// ---------------------------------------------------------------------------
// RR memo: failure handling + statistics
// ---------------------------------------------------------------------------

TEST(ArtifactStore, RrMemoCountsHitsAndMisses) {
    cad::ArtifactStore store;
    core::ArchSpec a;
    core::ArchSpec b;
    b.channel_width = a.channel_width + 2;
    (void)store.rr_for(a);
    (void)store.rr_for(a);
    (void)store.rr_for(b);
    const auto st = store.stats();
    EXPECT_EQ(st.rr_misses, 2u);  // one build per architecture
    EXPECT_EQ(st.rr_hits, 1u);    // the repeat
    // RR lookups must not leak into the artifact-tier counters.
    EXPECT_EQ(st.hits, 0u);
    EXPECT_EQ(st.misses, 0u);
}

// Regression: a failed RR build used to leave its errored future visible —
// has_rr() said true (so flows skipped creating the build pool they would
// need) and callers in the set_exception..erase window inherited the cached
// error instead of retrying.
TEST(ArtifactStore, RrForFailedBuildIsRetriableAndInvisible) {
    cad::ArtifactStore store;
    core::ArchSpec bad;
    bad.channel_width = 0;  // RRGraph validates the arch and throws

    EXPECT_THROW((void)store.rr_for(bad), base::Error);
    EXPECT_FALSE(store.has_rr(bad)) << "a failed build must not look memoized";
    EXPECT_EQ(store.num_rr_graphs(), 0u);
    // Every retry reproduces the failure freshly (no poisoned memo)...
    EXPECT_THROW((void)store.rr_for(bad), base::Error);
    // ...and an unrelated architecture is unaffected.
    EXPECT_NE(store.rr_for(core::ArchSpec{}), nullptr);
}

// Regression for the failure window itself: a caller already waiting on a
// build that fails must RETRY (and possibly become the next builder), not
// adopt the error. Old code published the exception before erasing the
// memo entry, handing waiters (and new arrivals in the window) the cached
// error; this choreography fails there and passes now.
TEST(ArtifactStore, RrForFailureWindowWaiterRetries) {
    cad::ArtifactStore store;
    const core::ArchSpec arch;
    const std::uint64_t fp = arch.fingerprint();

    std::atomic<int> calls{0};
    std::promise<void> t1_building_p;
    std::promise<void> t2_started_p;
    std::shared_future<void> t2_started = t2_started_p.get_future().share();
    const auto builder = [&]() -> std::shared_ptr<const core::RRGraph> {
        if (calls.fetch_add(1) == 0) {
            // Hold the first build open until T2 is (almost surely) parked
            // on the memo future, then fail.
            t1_building_p.set_value();
            t2_started.wait();
            std::this_thread::sleep_for(std::chrono::milliseconds(50));
            base::fail("injected RR build failure");
        }
        return std::make_shared<core::RRGraph>(arch);
    };

    std::thread t1([&] { EXPECT_THROW((void)store.rr_for_keyed(fp, builder), base::Error); });
    t1_building_p.get_future().wait();  // T1 owns the first (failing) build
    std::shared_ptr<const core::RRGraph> got;
    std::thread t2([&] {
        t2_started_p.set_value();
        got = store.rr_for_keyed(fp, builder);
    });
    t1.join();
    t2.join();

    ASSERT_NE(got, nullptr) << "waiter adopted the builder's error instead of retrying";
    EXPECT_EQ(calls.load(), 2);
    EXPECT_TRUE(store.has_rr(arch));
}

TEST(ArtifactStore, RrMemoSharesPerArchitecture) {
    cad::ArtifactStore store;
    core::ArchSpec a;
    core::ArchSpec b;
    b.channel_width = a.channel_width + 2;

    const auto rra1 = store.rr_for(a);
    const auto rra2 = store.rr_for(a);
    const auto rrb = store.rr_for(b);
    EXPECT_EQ(rra1.get(), rra2.get());  // one graph per architecture
    EXPECT_NE(rra1.get(), rrb.get());
    EXPECT_EQ(rra1->arch().fingerprint(), a.fingerprint());
    EXPECT_EQ(store.num_rr_graphs(), 2u);
}

}  // namespace
