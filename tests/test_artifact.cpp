// The content-addressing layer: Fingerprint/key hygiene, netlist and
// option-struct fingerprints (the exhaustive-field regression the artifact
// cache's soundness rests on), and ArtifactStore semantics including the
// per-architecture RR memo.
#include <gtest/gtest.h>

#include <future>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "asynclib/adders.hpp"
#include "cad/artifact.hpp"
#include "cad/fingerprint.hpp"
#include "cad/flow.hpp"
#include "core/archspec.hpp"

namespace {

using namespace afpga;

// ---------------------------------------------------------------------------
// Fingerprint
// ---------------------------------------------------------------------------

TEST(Fingerprint, OrderAndValueSensitive) {
    auto digest = [](auto... vs) {
        cad::Fingerprint f;
        (f.mix(vs), ...);
        return f.digest();
    };
    EXPECT_NE(digest(1, 2), digest(2, 1));
    EXPECT_NE(digest(1), digest(1, 0));
    EXPECT_NE(digest(0.5), digest(0.25));
    EXPECT_NE(digest(-0.0), digest(0.0));  // exact bit patterns
    EXPECT_EQ(digest(std::uint64_t{7}, true), digest(std::uint64_t{7}, true));
}

TEST(Fingerprint, StringsArePrefixUnambiguous) {
    auto digest = [](std::string_view a, std::string_view b) {
        cad::Fingerprint f;
        f.mix(a).mix(b);
        return f.digest();
    };
    EXPECT_NE(digest("ab", "c"), digest("a", "bc"));
    EXPECT_NE(digest("", "x"), digest("x", ""));
    EXPECT_EQ(digest("route", "x"), digest("route", "x"));
}

TEST(Fingerprint, ChainKeyDependsOnEveryPart) {
    const cad::ArtifactKey base = 0x1234;
    const cad::ArtifactKey k = cad::chain_key(base, "pack", 7);
    EXPECT_NE(k, cad::chain_key(base + 1, "pack", 7));
    EXPECT_NE(k, cad::chain_key(base, "place", 7));
    EXPECT_NE(k, cad::chain_key(base, "pack", 8));
    EXPECT_EQ(k, cad::chain_key(0x1234, "pack", 7));
}

// ---------------------------------------------------------------------------
// Netlist / hints fingerprints
// ---------------------------------------------------------------------------

TEST(NetlistFingerprint, DeterministicAcrossGeneratorRuns) {
    const auto a = asynclib::make_qdi_adder(2);
    const auto b = asynclib::make_qdi_adder(2);
    EXPECT_EQ(cad::fingerprint_netlist(a.nl), cad::fingerprint_netlist(b.nl));
    EXPECT_EQ(cad::fingerprint_hints(a.hints), cad::fingerprint_hints(b.hints));
}

TEST(NetlistFingerprint, DistinguishesDesignsAndHints) {
    const auto a2 = asynclib::make_qdi_adder(2);
    const auto a3 = asynclib::make_qdi_adder(3);
    EXPECT_NE(cad::fingerprint_netlist(a2.nl), cad::fingerprint_netlist(a3.nl));
    EXPECT_NE(cad::fingerprint_hints(a2.hints), cad::fingerprint_hints(a3.hints));
    EXPECT_NE(cad::fingerprint_hints(a2.hints), cad::fingerprint_hints({}));
}

TEST(NetlistFingerprint, SensitiveToNamesAndStructure) {
    netlist::Netlist a("t");
    const auto ia = a.add_input("x");
    a.add_output("y", a.add_cell(netlist::CellFunc::Inv, "g", {ia}));

    netlist::Netlist b("t");
    const auto ib = b.add_input("x");
    b.add_output("z", b.add_cell(netlist::CellFunc::Inv, "g", {ib}));  // PO renamed

    netlist::Netlist c("t");
    const auto ic = c.add_input("x");
    c.add_output("y", c.add_cell(netlist::CellFunc::Buf, "g", {ic}));  // function changed

    const auto fa = cad::fingerprint_netlist(a);
    EXPECT_NE(fa, cad::fingerprint_netlist(b));
    EXPECT_NE(fa, cad::fingerprint_netlist(c));
}

// ---------------------------------------------------------------------------
// Option-struct fingerprints: every field must feed the digest. Each case
// lists one mutation per field; all resulting fingerprints (plus the
// default's) must be pairwise distinct. The struct-size static_asserts in
// the implementations catch NEW fields at compile time; these tests catch
// a field that exists but was never mixed.
// ---------------------------------------------------------------------------

template <typename Opts, typename... Mutators>
void expect_every_field_counts(Mutators... mutators) {
    std::set<std::uint64_t> seen;
    seen.insert(Opts{}.fingerprint());
    auto apply = [&](auto&& m) {
        Opts o;
        m(o);
        EXPECT_TRUE(seen.insert(o.fingerprint()).second)
            << "a field mutation did not change the fingerprint";
    };
    (apply(mutators), ...);
}

TEST(OptionFingerprint, TechmapEveryFieldCounts) {
    expect_every_field_counts<cad::TechmapOptions>(
        [](auto& o) { o.use_rail_pair_hints = false; },
        [](auto& o) { o.absorb_validity = false; },
        [](auto& o) { o.greedy_pairing = false; },
        [](auto& o) { o.pairing_window = 65; });
}

TEST(OptionFingerprint, PackEveryFieldCounts) {
    expect_every_field_counts<cad::PackOptions>(
        [](auto& o) { o.affinity_clustering = false; });
}

TEST(OptionFingerprint, PlaceEveryFieldCounts) {
    expect_every_field_counts<cad::PlaceOptions>(
        [](auto& o) { o.seed = 2; }, [](auto& o) { o.alpha = 0.8; },
        [](auto& o) { o.moves_scale = 11.0; }, [](auto& o) { o.anneal = false; },
        [](auto& o) { o.incremental = false; }, [](auto& o) { o.parallel_seeds = 2; },
        [](auto& o) { o.threads = 3; });
}

TEST(OptionFingerprint, RouterEveryFieldCounts) {
    expect_every_field_counts<cad::RouterOptions>(
        [](auto& o) { o.max_iterations = 41; }, [](auto& o) { o.pres_fac_first = 0.7; },
        [](auto& o) { o.pres_fac_mult = 1.8; }, [](auto& o) { o.hist_fac = 1.5; },
        [](auto& o) { o.astar_fac = 0.5; }, [](auto& o) { o.incremental = false; },
        [](auto& o) { o.stall_full_reroute = 5; }, [](auto& o) { o.verbose = true; },
        [](auto& o) { o.threads = 2; }, [](auto& o) { o.bin_margin = 2; },
        [](auto& o) { o.min_bin_dim = 5; });
}

TEST(OptionFingerprint, FlowEverySemanticFieldCounts) {
    expect_every_field_counts<cad::FlowOptions>(
        [](auto& o) { o.seed = 2; },
        [](auto& o) { o.techmap.pairing_window = 65; },
        [](auto& o) { o.pack.affinity_clustering = false; },
        [](auto& o) { o.place.alpha = 0.8; },
        [](auto& o) { o.route.max_iterations = 41; },
        [](auto& o) { o.pde_extra_margin = 0.5; },
        [](auto& o) { o.verify_mapping = false; });
}

TEST(OptionFingerprint, FlowIgnoresPlumbingFields) {
    const core::ArchSpec arch;
    cad::FlowOptions o;
    const std::uint64_t base = o.fingerprint();
    o.prebuilt_rr = std::make_shared<core::RRGraph>(arch);
    o.artifact_store = std::make_shared<cad::ArtifactStore>();
    EXPECT_EQ(base, o.fingerprint())
        << "prebuilt_rr/artifact_store change where products come from, not what "
           "they are — they must not invalidate artifacts";
}

// ---------------------------------------------------------------------------
// ArtifactStore
// ---------------------------------------------------------------------------

TEST(ArtifactStore, PutGetRoundtripAndStats) {
    cad::ArtifactStore store;
    EXPECT_EQ(store.get<cad::Placement>(1), nullptr);  // miss
    auto pl = std::make_shared<const cad::Placement>();
    store.put(1, pl);
    EXPECT_EQ(store.get<cad::Placement>(1), pl);  // hit
    EXPECT_EQ(store.num_artifacts(), 1u);
    EXPECT_EQ(store.hits(), 1u);
    EXPECT_EQ(store.misses(), 1u);
}

TEST(ArtifactStore, TypeMismatchIsAMiss) {
    cad::ArtifactStore store;
    store.put(7, std::make_shared<const cad::Placement>());
    EXPECT_EQ(store.get<cad::MappedDesign>(7), nullptr);
    EXPECT_EQ(store.get<cad::Placement>(7) != nullptr, true);
}

TEST(ArtifactStore, FirstPublishWins) {
    cad::ArtifactStore store;
    auto first = std::make_shared<const cad::Placement>();
    store.put(3, first);
    store.put(3, std::make_shared<const cad::Placement>());
    EXPECT_EQ(store.get<cad::Placement>(3), first);
    EXPECT_EQ(store.num_artifacts(), 1u);
}

TEST(ArtifactStore, InflightDedupHandsOffToWaiters) {
    cad::ArtifactStore store;
    ASSERT_TRUE(store.begin_compute(9));  // first claimant owns the key

    // A second claimant blocks until the computer publishes + finishes,
    // then sees the published key (false = re-get it).
    std::promise<bool> waiter_saw;
    std::thread waiter(
        [&] { waiter_saw.set_value(store.begin_compute(9)); });
    store.put(9, std::make_shared<const cad::Placement>());
    store.finish_compute(9);
    auto fut = waiter_saw.get_future();
    EXPECT_FALSE(fut.get());
    waiter.join();

    // Published keys are never claimable again.
    EXPECT_FALSE(store.begin_compute(9));
}

TEST(ArtifactStore, FailedComputerPassesOwnershipOn) {
    cad::ArtifactStore store;
    ASSERT_TRUE(store.begin_compute(5));
    store.finish_compute(5);  // computer "failed": finished without put()
    EXPECT_TRUE(store.begin_compute(5));  // the key is claimable again
    store.finish_compute(5);
}

TEST(ArtifactStore, ClearDropsArtifactsAndRrMemo) {
    cad::ArtifactStore store;
    store.put(1, std::make_shared<const cad::Placement>());
    (void)store.rr_for(core::ArchSpec{});
    EXPECT_EQ(store.num_artifacts(), 1u);
    EXPECT_EQ(store.num_rr_graphs(), 1u);
    store.clear();
    EXPECT_EQ(store.num_artifacts(), 0u);
    EXPECT_EQ(store.num_rr_graphs(), 0u);
    EXPECT_EQ(store.get<cad::Placement>(1), nullptr);
    // The store keeps working after a clear.
    store.put(1, std::make_shared<const cad::Placement>());
    EXPECT_NE(store.get<cad::Placement>(1), nullptr);
}

TEST(ArtifactStore, RrMemoSharesPerArchitecture) {
    cad::ArtifactStore store;
    core::ArchSpec a;
    core::ArchSpec b;
    b.channel_width = a.channel_width + 2;

    const auto rra1 = store.rr_for(a);
    const auto rra2 = store.rr_for(a);
    const auto rrb = store.rr_for(b);
    EXPECT_EQ(rra1.get(), rra2.get());  // one graph per architecture
    EXPECT_NE(rra1.get(), rrb.get());
    EXPECT_EQ(rra1->arch().fingerprint(), a.fingerprint());
    EXPECT_EQ(store.num_rr_graphs(), 2u);
}

}  // namespace
