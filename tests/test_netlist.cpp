// Unit tests for the Netlist graph, validation and static analyses.
#include <gtest/gtest.h>

#include "base/check.hpp"
#include "netlist/analyze.hpp"
#include "netlist/netlist.hpp"

namespace {

using afpga::base::Error;
using afpga::netlist::CellFunc;
using afpga::netlist::eval_combinational;
using afpga::netlist::extract_functions;
using afpga::netlist::NetId;
using afpga::netlist::Netlist;
using afpga::netlist::TruthTable;

Netlist make_full_adder() {
    Netlist nl("fa");
    const NetId a = nl.add_input("a");
    const NetId b = nl.add_input("b");
    const NetId c = nl.add_input("c");
    const NetId sum = nl.add_cell(CellFunc::Xor, "sum", {a, b, c});
    const NetId cout = nl.add_cell(CellFunc::Maj, "cout", {a, b, c});
    nl.add_output("sum", sum);
    nl.add_output("cout", cout);
    return nl;
}

TEST(Netlist, BuildAndCounts) {
    const Netlist nl = make_full_adder();
    EXPECT_EQ(nl.num_cells(), 2u);
    EXPECT_EQ(nl.num_nets(), 5u);
    EXPECT_EQ(nl.primary_inputs().size(), 3u);
    EXPECT_EQ(nl.primary_outputs().size(), 2u);
    nl.validate();
}

TEST(Netlist, FindNetByName) {
    const Netlist nl = make_full_adder();
    EXPECT_TRUE(nl.find_net("sum").valid());
    EXPECT_FALSE(nl.find_net("nope").valid());
}

TEST(Netlist, SinksBackReference) {
    const Netlist nl = make_full_adder();
    const NetId a = nl.primary_inputs()[0];
    EXPECT_EQ(nl.net(a).sinks.size(), 2u);  // feeds XOR and MAJ
}

TEST(Netlist, ArityViolationThrows) {
    Netlist nl;
    const NetId a = nl.add_input("a");
    EXPECT_THROW(nl.add_cell(CellFunc::Mux, "m", {a}), Error);
    EXPECT_THROW(nl.add_cell(CellFunc::Inv, "i", {a, a}), Error);
}

TEST(Netlist, DuplicateOutputNameThrows) {
    Netlist nl;
    const NetId a = nl.add_input("a");
    nl.add_output("o", a);
    EXPECT_THROW(nl.add_output("o", a), Error);
}

TEST(Netlist, LutCellRoundTrip) {
    Netlist nl;
    const NetId a = nl.add_input("a");
    const NetId b = nl.add_input("b");
    const NetId o = nl.add_lut("xor2", TruthTable::from_bits(2, 0b0110), {a, b});
    nl.add_output("o", o);
    nl.validate();
    const auto funcs = extract_functions(nl);
    ASSERT_EQ(funcs.size(), 1u);
    EXPECT_EQ(funcs[0], TruthTable::from_bits(2, 0b0110));
}

TEST(Netlist, RewireInputMovesSink) {
    Netlist nl;
    const NetId a = nl.add_input("a");
    const NetId b = nl.add_input("b");
    const NetId o = nl.add_cell(CellFunc::Buf, "buf", {a});
    nl.rewire_input(nl.driver_of(o), 0, b);
    nl.validate();
    EXPECT_TRUE(nl.net(a).sinks.empty());
    EXPECT_EQ(nl.net(b).sinks.size(), 1u);
}

TEST(Netlist, HistogramCounts) {
    const Netlist nl = make_full_adder();
    const auto h = nl.histogram();
    EXPECT_EQ(h.at(CellFunc::Xor), 1u);
    EXPECT_EQ(h.at(CellFunc::Maj), 1u);
}

TEST(Netlist, CycleDetection) {
    Netlist nl;
    const NetId a = nl.add_input("a");
    const NetId x = nl.add_cell(CellFunc::Or, "x", {a, a});
    const NetId y = nl.add_cell(CellFunc::And, "y", {x, a});
    // close a combinational loop: x's second input becomes y
    nl.rewire_input(nl.driver_of(x), 1, y);
    EXPECT_TRUE(nl.has_combinational_cycle());
}

TEST(Netlist, SequentialLoopIsNotCombinationalCycle) {
    Netlist nl;
    const NetId a = nl.add_input("a");
    const NetId c = nl.add_cell(CellFunc::C, "c", {a, a});
    nl.rewire_input(nl.driver_of(c), 1, c);  // C-element holding itself
    EXPECT_FALSE(nl.has_combinational_cycle());
}

TEST(Netlist, TopoOrderComplete) {
    const Netlist nl = make_full_adder();
    EXPECT_EQ(nl.topo_order_cut_sequential().size(), nl.num_cells());
}

TEST(Analyze, FullAdderTruthTables) {
    const Netlist nl = make_full_adder();
    const auto funcs = extract_functions(nl);
    ASSERT_EQ(funcs.size(), 2u);
    for (std::uint32_t m = 0; m < 8; ++m) {
        const int s = (m & 1) + ((m >> 1) & 1) + ((m >> 2) & 1);
        EXPECT_EQ(funcs[0].eval(m), (s & 1) != 0);
        EXPECT_EQ(funcs[1].eval(m), s >= 2);
    }
}

TEST(Analyze, EvalRejectsSequential) {
    Netlist nl;
    const NetId a = nl.add_input("a");
    const NetId b = nl.add_input("b");
    nl.add_output("o", nl.add_cell(CellFunc::C, "c", {a, b}));
    EXPECT_THROW(eval_combinational(nl, {true, true}), Error);
}

TEST(Analyze, ArrivalTimesAccumulate) {
    Netlist nl;
    const NetId a = nl.add_input("a");
    const NetId x = nl.add_cell(CellFunc::Inv, "x", {a});   // 50ps
    const NetId y = nl.add_cell(CellFunc::Inv, "y", {x});   // +50ps
    nl.add_output("o", y);
    const auto arr = afpga::netlist::net_arrival_times(nl);
    EXPECT_EQ(arr[x.index()], 50);
    EXPECT_EQ(arr[y.index()], 100);
    EXPECT_EQ(afpga::netlist::longest_path_to(nl, y), 100);
}

TEST(Analyze, ExtraNetDelayCounts) {
    Netlist nl;
    const NetId a = nl.add_input("a");
    const NetId x = nl.add_cell(CellFunc::Inv, "x", {a});
    const NetId y = nl.add_cell(CellFunc::Inv, "y", {x});
    nl.add_output("o", y);
    const auto arr = afpga::netlist::net_arrival_times(nl, 10);
    EXPECT_EQ(arr[y.index()], 120);  // two hops of +10
}

TEST(Analyze, DelayOverrideRespected) {
    Netlist nl;
    const NetId a = nl.add_input("a");
    const NetId d = nl.add_cell(CellFunc::Delay, "d", {a});
    nl.set_cell_delay(nl.driver_of(d), 777);
    nl.add_output("o", d);
    EXPECT_EQ(afpga::netlist::longest_path_to(nl, d), 777);
}

TEST(Netlist, DotExportMentionsCells) {
    const Netlist nl = make_full_adder();
    const std::string dot = nl.to_dot();
    EXPECT_NE(dot.find("digraph"), std::string::npos);
    EXPECT_NE(dot.find("XOR"), std::string::npos);
    EXPECT_NE(dot.find("MAJ"), std::string::npos);
}

}  // namespace
