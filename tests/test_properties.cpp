// Property sweeps over the whole stack: random specifications are expanded
// into asynchronous circuits, pushed through the complete CAD flow, decoded
// from the bitstream and verified token-by-token against the specification.
// These are the "any function, any style, same fabric" guarantees.
#include <gtest/gtest.h>

#include "asynclib/dualrail.hpp"
#include "asynclib/micropipeline.hpp"
#include "base/rng.hpp"
#include "cad/flow.hpp"
#include "netlist/analyze.hpp"
#include "sim/simulator.hpp"
#include "sim/testbench.hpp"
#include "support/flow_fixtures.hpp"

namespace {

using namespace afpga;
using netlist::CellFunc;
using netlist::Logic;
using netlist::NetId;
using netlist::Netlist;
using netlist::TruthTable;
using sim::Simulator;
using testsupport::po_net;

class RandomQdiFlow : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomQdiFlow, DimsBlockSurvivesTheFullFlow) {
    base::Rng rng(GetParam());
    const std::size_t n = 2 + rng.below(3);       // 2..4 inputs
    const std::size_t n_out = 1 + rng.below(3);   // 1..3 outputs
    std::vector<TruthTable> specs;
    for (std::size_t o = 0; o < n_out; ++o)
        specs.push_back(
            TruthTable::from_function(n, [&](std::uint32_t) { return rng.chance(0.5); }));

    Netlist nl("rand_qdi");
    const auto ins = asynclib::add_dual_rail_inputs(nl, "x", n);
    auto res = asynclib::expand_dims(nl, specs, ins, "f");
    const NetId done = asynclib::add_dims_completion(nl, res, "cd");
    for (std::size_t o = 0; o < n_out; ++o) {
        nl.add_output("o" + std::to_string(o) + ".t", res.outputs[o].t);
        nl.add_output("o" + std::to_string(o) + ".f", res.outputs[o].f);
    }
    nl.add_output("done", done);
    nl.validate();

    core::ArchSpec arch = core::paper_arch();
    arch.width = 10;
    arch.height = 10;
    arch.channel_width = 14;
    cad::FlowOptions opts;
    opts.seed = GetParam();
    const auto fr = cad::run_flow(nl, res.hints, arch, opts);

    testsupport::PostRouteSim prs(fr);
    Simulator& sim = *prs.sim;
    const auto& design = prs.design;

    sim::QdiCombIface iface;
    for (std::size_t i = 0; i < n; ++i)
        iface.inputs.push_back(
            testsupport::find_rails(design.nl, "x[" + std::to_string(i) + "]"));
    for (std::size_t o = 0; o < n_out; ++o)
        iface.outputs.push_back(testsupport::po_rails(design.nl, "o" + std::to_string(o)));
    iface.done = po_net(design.nl, "done");

    for (std::uint32_t m = 0; m < (1u << n); ++m) {
        const std::uint64_t out = sim::qdi_apply_token(sim, iface, m);
        for (std::size_t o = 0; o < n_out; ++o)
            ASSERT_EQ(((out >> o) & 1) != 0, specs[o].eval(m))
                << "seed=" << GetParam() << " m=" << m << " o=" << o;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomQdiFlow,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u, 66u, 77u, 88u));

class RandomBundledFlow : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomBundledFlow, RandomLogicStageSurvivesTheFullFlow) {
    base::Rng rng(GetParam());
    const std::size_t n = 3 + rng.below(3);      // 3..5 data bits
    const std::size_t n_out = 1 + rng.below(2);  // 1..2 outputs
    std::vector<TruthTable> specs;
    for (std::size_t o = 0; o < n_out; ++o)
        specs.push_back(TruthTable::from_function(
            n, [&](std::uint32_t) { return rng.chance(0.5); }));

    // One micropipeline stage whose datapath computes the random functions
    // as LUT cells behind the capture latches.
    Netlist nl("rand_mp");
    std::vector<NetId> data;
    for (std::size_t i = 0; i < n; ++i) data.push_back(nl.add_input("d" + std::to_string(i)));
    const NetId req_in = nl.add_input("req_in");
    const NetId ack_out = nl.add_input("ack_out");
    auto stage = asynclib::add_micropipeline_stage(nl, data, req_in, ack_out, "st");
    std::vector<NetId> outs;
    for (std::size_t o = 0; o < n_out; ++o)
        outs.push_back(nl.add_lut("f" + std::to_string(o), specs[o], stage.q));
    (void)asynclib::tune_matched_delay(nl, stage, outs, 0.5);
    for (std::size_t o = 0; o < n_out; ++o)
        nl.add_output("y" + std::to_string(o), outs[o]);
    nl.add_output("req_out", stage.req_out);
    nl.add_output("ack_in", stage.ack_to_prev);
    nl.validate();

    core::ArchSpec arch = core::paper_arch();
    arch.width = 10;
    arch.height = 10;
    arch.channel_width = 14;
    cad::FlowOptions opts;
    opts.seed = GetParam();
    opts.pde_extra_margin = 2.0;
    const auto fr = cad::run_flow(nl, {}, arch, opts);

    testsupport::PostRouteSim prs(fr);
    Simulator& sim = *prs.sim;
    const auto& design = prs.design;

    sim::BundledStageIface iface;
    for (std::size_t i = 0; i < n; ++i)
        iface.data_in.push_back(design.nl.find_net("d" + std::to_string(i)));
    iface.req_in = design.nl.find_net("req_in");
    iface.ack_out = design.nl.find_net("ack_out");
    for (std::size_t o = 0; o < n_out; ++o)
        iface.data_out.push_back(po_net(design.nl, "y" + std::to_string(o)));
    iface.req_out = po_net(design.nl, "req_out");
    iface.ack_in = po_net(design.nl, "ack_in");

    for (std::uint32_t m = 0; m < (1u << n); ++m) {
        const std::uint64_t out = sim::bundled_apply_token(sim, iface, m, 300);
        for (std::size_t o = 0; o < n_out; ++o)
            ASSERT_EQ(((out >> o) & 1) != 0, specs[o].eval(m))
                << "seed=" << GetParam() << " m=" << m;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomBundledFlow,
                         ::testing::Values(5u, 15u, 25u, 35u, 45u, 65u));

class FlowDeterminism : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FlowDeterminism, SameSeedSameBitstreamAcrossStyles) {
    base::Rng rng(GetParam());
    Netlist nl("det");
    const auto ins = asynclib::add_dual_rail_inputs(nl, "x", 2);
    auto res = asynclib::expand_dims(
        nl,
        {TruthTable::from_function(2, [&](std::uint32_t) { return rng.chance(0.5); })},
        ins, "f");
    nl.add_output("o.t", res.outputs[0].t);
    nl.add_output("o.f", res.outputs[0].f);
    nl.validate();
    cad::FlowOptions opts;
    opts.seed = GetParam();
    const auto a = cad::run_flow(nl, res.hints, core::paper_arch(), opts);
    const auto b = cad::run_flow(nl, res.hints, core::paper_arch(), opts);
    EXPECT_TRUE(a.bits->serialize() == b.bits->serialize());
    EXPECT_EQ(a.bits->serialize().crc32(), b.bits->serialize().crc32());
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlowDeterminism, ::testing::Values(1u, 2u, 3u, 4u));

TEST(FlowProperty, ElaboratedCombinationalPartMatchesExtractedFunctions) {
    // For a pure-combinational bundled datapath (no latches), the elaborated
    // netlist must compute the same truth tables as the source.
    base::Rng rng(99);
    Netlist nl("comb");
    std::vector<NetId> ins;
    for (int i = 0; i < 4; ++i) ins.push_back(nl.add_input("i" + std::to_string(i)));
    const NetId y0 = nl.add_cell(CellFunc::Xor, "y0", {ins[0], ins[1], ins[2]});
    const NetId y1 = nl.add_cell(CellFunc::Maj, "y1", {ins[1], ins[2], ins[3]});
    const NetId y2 = nl.add_cell(CellFunc::Nand, "y2", {y0, y1});
    nl.add_output("y2", y2);
    nl.validate();

    const auto fr = cad::run_flow(nl, {}, core::paper_arch(), {});
    const auto design = fr.elaborate();
    const auto src_funcs = netlist::extract_functions(nl);
    const auto impl_funcs = netlist::extract_functions(design.nl);
    ASSERT_EQ(src_funcs.size(), impl_funcs.size());
    // PI order may differ between source and elaboration; compare via
    // name-aligned remapping.
    std::vector<std::size_t> perm(4);
    for (std::size_t i = 0; i < 4; ++i) {
        const std::string name = nl.net(nl.primary_inputs()[i]).name;
        bool found = false;
        for (std::size_t j = 0; j < 4; ++j) {
            if (design.nl.net(design.nl.primary_inputs()[j]).name == name) {
                perm[i] = j;
                found = true;
            }
        }
        ASSERT_TRUE(found) << name;
    }
    EXPECT_EQ(src_funcs[0].remap(perm, 4), impl_funcs[0]);
}

}  // namespace
