// The parallel CAD subsystem: thread-pool semantics, determinism of
// multi-seed placement racing under different pool sizes, and the concurrent
// BatchFlowRunner against its sequential equivalent. Everything here must
// also run clean under ThreadSanitizer (the CI tsan leg executes this
// binary); tests deliberately push work through pools wider and narrower
// than the task count to exercise both queuing and stealing.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <set>
#include <string>
#include <vector>

#include "asynclib/adders.hpp"
#include "asynclib/fifos.hpp"
#include "base/check.hpp"
#include "base/rng.hpp"
#include "base/threadpool.hpp"
#include "cad/batch.hpp"
#include "cad/flow.hpp"
#include "cad/pack.hpp"
#include "cad/place.hpp"
#include "cad/techmap.hpp"
#include "support/flow_fixtures.hpp"

namespace {

using namespace afpga;

// ---------------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------------

TEST(ThreadPool, SubmitReturnsResults) {
    base::ThreadPool pool(4);
    EXPECT_EQ(pool.num_workers(), 4u);
    std::vector<std::future<int>> futs;
    for (int i = 0; i < 64; ++i) futs.push_back(pool.submit([i] { return i * i; }));
    for (int i = 0; i < 64; ++i) EXPECT_EQ(futs[static_cast<std::size_t>(i)].get(), i * i);
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
    base::ThreadPool pool(3);
    std::vector<std::atomic<int>> hits(257);
    pool.parallel_for(hits.size(), [&](std::size_t i) { ++hits[i]; });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, TaskExceptionPropagates) {
    base::ThreadPool pool(2);
    auto f = pool.submit([]() -> int { throw base::Error("boom"); });
    EXPECT_THROW((void)f.get(), base::Error);
    // The pool survives a throwing task.
    EXPECT_EQ(pool.submit([] { return 5; }).get(), 5);
    EXPECT_THROW(pool.parallel_for(8,
                                   [](std::size_t i) {
                                       if (i == 3) throw base::Error("pf");
                                   }),
                 base::Error);
}

TEST(ThreadPool, MoreTasksThanWorkersDrains) {
    base::ThreadPool pool(2);
    std::atomic<int> sum{0};
    pool.parallel_for(1000, [&](std::size_t i) { sum += static_cast<int>(i % 7); });
    int expect = 0;
    for (int i = 0; i < 1000; ++i) expect += i % 7;
    EXPECT_EQ(sum.load(), expect);
}

TEST(ThreadPool, DefaultWorkersHonoursEnv) {
    // CMake exports AFPGA_TEST_THREADS as AFPGA_THREADS for every test, so
    // unit legs exercise a multi-worker pool even on one-core runners. Only
    // a fully-numeric positive value overrides the hardware default.
    if (const char* env = std::getenv("AFPGA_THREADS")) {
        char* end = nullptr;
        const long v = std::strtol(env, &end, 10);
        if (end != env && *end == '\0' && v > 0) {
            EXPECT_EQ(base::ThreadPool::default_workers(), static_cast<std::size_t>(v));
            return;
        }
    }
    EXPECT_GE(base::ThreadPool::default_workers(), 1u);
}

// ---------------------------------------------------------------------------
// Multi-seed placement racing
// ---------------------------------------------------------------------------

struct PlacedDesign {
    cad::MappedDesign md;
    cad::PackedDesign pd;
    core::ArchSpec arch;
};

PlacedDesign prepare_adder(std::size_t bits) {
    auto adder = asynclib::make_qdi_adder(bits);
    PlacedDesign out;
    out.md = cad::techmap(adder.nl, adder.hints, {});
    out.pd = cad::pack(out.md, out.arch, {});
    return out;
}

void expect_same_placement(const cad::Placement& a, const cad::Placement& b) {
    ASSERT_EQ(a.cluster_loc.size(), b.cluster_loc.size());
    for (std::size_t i = 0; i < a.cluster_loc.size(); ++i)
        EXPECT_TRUE(a.cluster_loc[i] == b.cluster_loc[i]) << "cluster " << i;
    EXPECT_EQ(a.pi_pad, b.pi_pad);
    EXPECT_EQ(a.po_pad, b.po_pad);
    EXPECT_EQ(a.final_cost, b.final_cost);
    EXPECT_EQ(a.winner_replica, b.winner_replica);
}

TEST(ParallelPlace, PoolSizeDoesNotChangeTheWinner) {
    const PlacedDesign d = prepare_adder(2);
    cad::PlaceOptions opts;
    opts.seed = 11;
    opts.parallel_seeds = 4;
    opts.threads = 1;
    const cad::Placement serial = cad::place(d.pd, d.md, d.arch, opts);
    ASSERT_EQ(serial.replicas.size(), 4u);
    for (unsigned t : {2u, 4u}) {
        opts.threads = t;
        const cad::Placement racy = cad::place(d.pd, d.md, d.arch, opts);
        expect_same_placement(serial, racy);
        ASSERT_EQ(racy.replicas.size(), 4u);
        for (std::size_t i = 0; i < 4; ++i) {
            EXPECT_EQ(serial.replicas[i].seed, racy.replicas[i].seed) << "replica " << i;
            EXPECT_EQ(serial.replicas[i].final_cost, racy.replicas[i].final_cost)
                << "replica " << i;
            EXPECT_EQ(serial.replicas[i].cost_trajectory, racy.replicas[i].cost_trajectory)
                << "replica " << i;
        }
    }
}

TEST(ParallelPlace, ReplicaResultsArePureFunctionsOfTheirSeed) {
    // Growing the race keeps the existing replicas' per-seed QoR bit-identical
    // (N=2 is a prefix of N=4), and every replica equals a single-seed run
    // with the same derived seed.
    const PlacedDesign d = prepare_adder(2);
    cad::PlaceOptions opts;
    opts.seed = 23;
    opts.parallel_seeds = 2;
    const cad::Placement two = cad::place(d.pd, d.md, d.arch, opts);
    opts.parallel_seeds = 4;
    const cad::Placement four = cad::place(d.pd, d.md, d.arch, opts);
    ASSERT_EQ(two.replicas.size(), 2u);
    ASSERT_EQ(four.replicas.size(), 4u);
    for (std::size_t i = 0; i < 2; ++i) {
        EXPECT_EQ(two.replicas[i].seed, four.replicas[i].seed);
        EXPECT_EQ(two.replicas[i].final_cost, four.replicas[i].final_cost);
    }
    // Cross-check replica 1 against a plain single-seed anneal.
    cad::PlaceOptions single;
    single.seed = base::Rng::derive_seed(23, 1);
    const cad::Placement alone = cad::place(d.pd, d.md, d.arch, single);
    EXPECT_EQ(alone.final_cost, four.replicas[1].final_cost);
}

TEST(ParallelPlace, WinnerIsMinCostThenLowestReplica) {
    const PlacedDesign d = prepare_adder(2);
    cad::PlaceOptions opts;
    opts.seed = 31;
    opts.parallel_seeds = 4;
    const cad::Placement pl = cad::place(d.pd, d.md, d.arch, opts);
    ASSERT_EQ(pl.replicas.size(), 4u);
    for (std::size_t i = 0; i < pl.replicas.size(); ++i) {
        if (i < pl.winner_replica)
            EXPECT_GT(pl.replicas[i].final_cost, pl.final_cost) << "replica " << i;
        else
            EXPECT_GE(pl.replicas[i].final_cost, pl.final_cost) << "replica " << i;
    }
    EXPECT_EQ(pl.final_cost, pl.replicas[pl.winner_replica].final_cost);
}

// ---------------------------------------------------------------------------
// Whole-flow determinism under parallelism
// ---------------------------------------------------------------------------

TEST(ParallelFlow, FingerprintInvariantUnderPoolSize) {
    auto adder = asynclib::make_qdi_adder(2);
    cad::FlowOptions opts;
    opts.seed = 77;
    opts.place.parallel_seeds = 4;
    std::set<std::string> fingerprints;
    for (unsigned t : {1u, 2u, 4u}) {
        opts.place.threads = t;
        const auto fr = cad::run_flow(adder.nl, adder.hints, core::ArchSpec{}, opts);
        fingerprints.insert(testsupport::flow_fingerprint(fr));
    }
    EXPECT_EQ(fingerprints.size(), 1u)
        << "placement race winner depended on the pool size";
}

// ---------------------------------------------------------------------------
// BatchFlowRunner
// ---------------------------------------------------------------------------

TEST(BatchFlow, MatchesSequentialRunFlowBitForBit) {
    auto adder = asynclib::make_qdi_adder(2);
    auto fifo = asynclib::make_wchb_fifo(2, 2);
    const core::ArchSpec arch;

    std::vector<cad::BatchJob> jobs;
    for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
        cad::BatchJob j;
        j.name = "adder_s" + std::to_string(seed);
        j.nl = &adder.nl;
        j.hints = &adder.hints;
        j.opts.seed = seed;
        jobs.push_back(j);
    }
    {
        cad::BatchJob j;
        j.name = "fifo";
        j.nl = &fifo.nl;
        j.hints = &fifo.hints;
        j.opts.seed = 9;
        jobs.push_back(j);
    }

    for (bool share_rr : {true, false}) {
        cad::BatchOptions bopts;
        bopts.threads = 4;
        bopts.share_rr = share_rr;
        cad::BatchFlowRunner runner(arch, bopts);
        const auto results = runner.run(jobs);
        ASSERT_EQ(results.size(), jobs.size());
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            ASSERT_TRUE(results[i].ok) << results[i].name << ": " << results[i].error;
            EXPECT_EQ(results[i].name, jobs[i].name);
            const auto solo =
                cad::run_flow(*jobs[i].nl, *jobs[i].hints, arch, jobs[i].opts);
            EXPECT_EQ(testsupport::flow_fingerprint(results[i].result),
                      testsupport::flow_fingerprint(solo))
                << results[i].name << " (share_rr=" << share_rr << ")";
        }
    }
}

TEST(BatchFlow, SharedRRGraphIsOneObject) {
    auto adder = asynclib::make_qdi_adder(2);
    std::vector<cad::BatchJob> jobs(3);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        jobs[i].name = "j" + std::to_string(i);
        jobs[i].nl = &adder.nl;
        jobs[i].hints = &adder.hints;
        jobs[i].opts.seed = i + 1;
    }
    cad::BatchFlowRunner runner(core::ArchSpec{}, {.threads = 2, .share_rr = true});
    const auto results = runner.run(jobs);
    ASSERT_TRUE(results[0].ok && results[1].ok && results[2].ok);
    EXPECT_EQ(results[0].result.rr.get(), results[1].result.rr.get());
    EXPECT_EQ(results[1].result.rr.get(), results[2].result.rr.get());
    const auto* rep = results[0].result.telemetry.stage("route");
    ASSERT_NE(rep, nullptr);
    EXPECT_NE(rep->metric("rr_shared"), nullptr);
}

TEST(BatchFlow, JobFailureIsIsolated) {
    auto small = asynclib::make_qdi_adder(2);
    auto big = asynclib::make_qdi_adder(16);  // cannot fit the default fabric
    std::vector<cad::BatchJob> jobs(3);
    jobs[0] = {"fits_a", &small.nl, &small.hints, {}};
    jobs[1] = {"too_big", &big.nl, &big.hints, {}};
    jobs[1].opts.route.max_iterations = 5;  // give up on the doomed job quickly
    jobs[2] = {"fits_b", &small.nl, &small.hints, {}};
    jobs[2].opts.seed = 5;

    cad::BatchFlowRunner runner(core::ArchSpec{}, {.threads = 3, .share_rr = true});
    const auto results = runner.run(jobs);
    EXPECT_TRUE(results[0].ok) << results[0].error;
    EXPECT_FALSE(results[1].ok);
    EXPECT_FALSE(results[1].error.empty());
    EXPECT_TRUE(results[2].ok) << results[2].error;

    const std::string report = runner.report_json(results);
    EXPECT_NE(report.find("\"jobs_ok\":2"), std::string::npos) << report;
    EXPECT_NE(report.find("\"jobs_total\":3"), std::string::npos) << report;
}

TEST(BatchFlow, ParallelSeedsInsideBatchJobsStaysDeterministic) {
    // The two tiers compose: batch jobs that each race placement replicas
    // still reproduce the sequential result.
    auto adder = asynclib::make_qdi_adder(2);
    cad::BatchJob j;
    j.name = "racing";
    j.nl = &adder.nl;
    j.hints = &adder.hints;
    j.opts.seed = 13;
    j.opts.place.parallel_seeds = 3;
    j.opts.place.threads = 2;

    const core::ArchSpec arch;
    cad::BatchFlowRunner runner(arch, {.threads = 2, .share_rr = true});
    const auto results = runner.run({j, j});
    ASSERT_TRUE(results[0].ok && results[1].ok);
    const auto solo = cad::run_flow(*j.nl, *j.hints, arch, j.opts);
    EXPECT_EQ(testsupport::flow_fingerprint(results[0].result),
              testsupport::flow_fingerprint(solo));
    EXPECT_EQ(testsupport::flow_fingerprint(results[1].result),
              testsupport::flow_fingerprint(solo));
}

}  // namespace
