// CAD flow tests: techmap correctness, packing legality, placement, routing
// legality, and the end-to-end bitstream -> elaborate -> simulate
// equivalence that anchors the whole reproduction.
#include <gtest/gtest.h>

#include "asynclib/adders.hpp"
#include "asynclib/fifos.hpp"
#include "base/check.hpp"
#include "base/strings.hpp"
#include "cad/flow.hpp"
#include "sim/channels.hpp"
#include "sim/monitors.hpp"
#include "sim/simulator.hpp"
#include "sim/testbench.hpp"
#include "support/flow_fixtures.hpp"

namespace {

using namespace afpga;
using cad::FlowOptions;
using cad::run_flow;
using core::ArchSpec;
using netlist::CellFunc;
using netlist::Logic;
using netlist::NetId;
using netlist::Netlist;
using netlist::TruthTable;
using sim::Simulator;
using testsupport::find_rails;
using testsupport::po_net;
using testsupport::PostRouteSim;

// --- techmap ------------------------------------------------------------------

TEST(Techmap, FullAdderGatesBecomeOneLePair) {
    Netlist nl("fa");
    const NetId a = nl.add_input("a");
    const NetId b = nl.add_input("b");
    const NetId c = nl.add_input("c");
    const NetId sum = nl.add_cell(CellFunc::Xor, "sum", {a, b, c});
    const NetId cout = nl.add_cell(CellFunc::Maj, "cout", {a, b, c});
    nl.add_output("sum", sum);
    nl.add_output("cout", cout);
    asynclib::MappingHints hints;
    hints.rail_pairs.emplace_back(sum, cout);  // same support: pair them
    const auto md = cad::techmap(nl, hints);
    EXPECT_EQ(md.les.size(), 1u);
    EXPECT_TRUE(md.les[0].a && md.les[0].b);
    cad::verify_mapping(nl, md);
}

TEST(Techmap, BufferChainsFold) {
    Netlist nl;
    const NetId a = nl.add_input("a");
    NetId n = a;
    for (int i = 0; i < 3; ++i) n = nl.add_cell(CellFunc::Buf, "b" + std::to_string(i), {n});
    const NetId y = nl.add_cell(CellFunc::Inv, "y", {n});
    nl.add_output("y", y);
    const auto md = cad::techmap(nl);
    ASSERT_EQ(md.les.size(), 1u);
    EXPECT_EQ(md.les[0].a->inputs[0], a);  // folded through to the PI
}

TEST(Techmap, ConstantInputsCofactored) {
    Netlist nl;
    const NetId a = nl.add_input("a");
    const NetId one = nl.add_cell(CellFunc::Const1, "one", {});
    const NetId y = nl.add_cell(CellFunc::And, "y", {a, one});
    nl.add_output("y", y);
    const auto md = cad::techmap(nl);
    // AND(a,1) == a: collapses to an alias, leaving no LE at all.
    EXPECT_TRUE(md.les.empty());
    EXPECT_EQ(md.canon(y), a);
}

TEST(Techmap, SequentialCellGetsFeedbackVariable) {
    Netlist nl;
    const NetId a = nl.add_input("a");
    const NetId b = nl.add_input("b");
    const NetId c = nl.add_cell(CellFunc::C, "c", {a, b});
    nl.add_output("c", c);
    const auto md = cad::techmap(nl);
    ASSERT_EQ(md.les.size(), 1u);
    const auto& f = *md.les[0].a;
    EXPECT_TRUE(f.has_feedback);
    EXPECT_EQ(f.inputs.size(), 3u);  // a, b, own output
    EXPECT_NE(std::find(f.inputs.begin(), f.inputs.end(), c), f.inputs.end());
    cad::verify_mapping(nl, md);
}

TEST(Techmap, SevenInputFunctionTakesWholeLe) {
    Netlist nl;
    std::vector<NetId> ins;
    for (int i = 0; i < 7; ++i) ins.push_back(nl.add_input("i" + std::to_string(i)));
    const NetId y = nl.add_cell(CellFunc::Xor, "y", ins);
    nl.add_output("y", y);
    const auto md = cad::techmap(nl);
    ASSERT_EQ(md.les.size(), 1u);
    EXPECT_TRUE(md.les[0].full7.has_value());
    cad::verify_mapping(nl, md);
}

TEST(Techmap, ValidityAbsorbedIntoLut2) {
    // WCHB stages are where the LUT2 slot shines: the two rail latches of a
    // bit pair into one LE (shared enable + inputs), and the per-bit validity
    // OR moves into that LE's LUT2.
    auto fifo = asynclib::make_wchb_fifo(2, 1);
    const auto md = cad::techmap(fifo.nl, fifo.hints);
    std::size_t lut2 = 0;
    for (const auto& le : md.les) lut2 += le.lut2.has_value();
    EXPECT_GE(lut2, 2u);  // one validity per bit
    cad::verify_mapping(fifo.nl, md);
}

TEST(Techmap, HintsImprovePairing) {
    auto adder = asynclib::make_qdi_adder(2);
    cad::TechmapOptions with;
    cad::TechmapOptions without;
    without.use_rail_pair_hints = false;
    without.absorb_validity = false;
    without.greedy_pairing = false;
    const auto md_with = cad::techmap(adder.nl, adder.hints, with);
    const auto md_without = cad::techmap(adder.nl, adder.hints, without);
    EXPECT_LT(md_with.les.size(), md_without.les.size());
}

TEST(Techmap, RejectsTooWideGate) {
    Netlist nl;
    std::vector<NetId> ins;
    for (int i = 0; i < 7; ++i) ins.push_back(nl.add_input("i" + std::to_string(i)));
    const NetId c = nl.add_cell(CellFunc::C, "c", ins);  // 7 + feedback = 8 vars
    nl.add_output("c", c);
    EXPECT_THROW(cad::techmap(nl), base::Error);
}

// --- pack ------------------------------------------------------------------------

TEST(Pack, RespectsLesPerPlb) {
    auto adder = asynclib::make_qdi_adder(2);
    const auto md = cad::techmap(adder.nl, adder.hints);
    const ArchSpec arch;
    const auto pd = cad::pack(md, arch);
    for (const auto& c : pd.clusters) {
        EXPECT_LE(c.le_indices.size(), arch.les_per_plb);
        EXPECT_LE(c.external_inputs(md).size(), arch.plb_inputs);
    }
    // Every LE assigned exactly once.
    std::vector<bool> seen(md.les.size(), false);
    for (const auto& c : pd.clusters)
        for (std::size_t li : c.le_indices) {
            EXPECT_FALSE(seen[li]);
            seen[li] = true;
        }
    for (bool s : seen) EXPECT_TRUE(s);
}

TEST(Pack, PdeAttachedToProducerCluster) {
    auto adder = asynclib::make_micropipeline_adder(1);
    const auto md = cad::techmap(adder.nl, {});
    ASSERT_EQ(md.pdes.size(), 1u);
    const ArchSpec arch;
    const auto pd = cad::pack(md, arch);
    const std::size_t pc = pd.cluster_of_pde[0];
    const auto made = pd.clusters[pc].produced(md);
    // The PDE's input (the controller C output) should be produced in the
    // same cluster when capacity allows.
    EXPECT_NE(std::find(made.begin(), made.end(), md.pdes[0].input), made.end());
}

// --- place ------------------------------------------------------------------------

TEST(Place, ProducesLegalPlacement) {
    auto adder = asynclib::make_qdi_adder(2);
    const auto md = cad::techmap(adder.nl, adder.hints);
    const ArchSpec arch;
    const auto pd = cad::pack(md, arch);
    cad::PlaceOptions opts;
    opts.seed = 42;
    const auto pl = cad::place(pd, md, arch, opts);
    ASSERT_EQ(pl.cluster_loc.size(), pd.clusters.size());
    std::set<std::pair<std::uint32_t, std::uint32_t>> used;
    for (const auto& c : pl.cluster_loc) {
        EXPECT_LT(c.x, arch.width);
        EXPECT_LT(c.y, arch.height);
        EXPECT_TRUE(used.emplace(c.x, c.y).second) << "two clusters on one PLB";
    }
    std::set<std::uint32_t> pads;
    for (const auto& [n, p] : pl.pi_pad) EXPECT_TRUE(pads.insert(p).second);
    for (const auto& [n, p] : pl.po_pad) EXPECT_TRUE(pads.insert(p).second);
}

TEST(Place, AnnealingBeatsRandom) {
    auto adder = asynclib::make_qdi_adder(4);
    const auto md = cad::techmap(adder.nl, adder.hints);
    const ArchSpec arch;
    const auto pd = cad::pack(md, arch);
    cad::PlaceOptions random_only;
    random_only.anneal = false;
    random_only.seed = 7;
    cad::PlaceOptions annealed;
    annealed.seed = 7;
    const auto pl0 = cad::place(pd, md, arch, random_only);
    const auto pl1 = cad::place(pd, md, arch, annealed);
    const double w0 = cad::placement_wirelength(pd, md, arch, pl0);
    const double w1 = cad::placement_wirelength(pd, md, arch, pl1);
    EXPECT_LT(w1, w0);
}

TEST(Place, DeterministicForSeed) {
    auto adder = asynclib::make_qdi_adder(2);
    const auto md = cad::techmap(adder.nl, adder.hints);
    const ArchSpec arch;
    const auto pd = cad::pack(md, arch);
    cad::PlaceOptions opts;
    opts.seed = 99;
    const auto a = cad::place(pd, md, arch, opts);
    const auto b = cad::place(pd, md, arch, opts);
    EXPECT_EQ(a.cluster_loc.size(), b.cluster_loc.size());
    for (std::size_t i = 0; i < a.cluster_loc.size(); ++i)
        EXPECT_TRUE(a.cluster_loc[i] == b.cluster_loc[i]);
    EXPECT_EQ(a.pi_pad, b.pi_pad);
}

TEST(Place, ThrowsWhenDesignTooBig) {
    auto adder = asynclib::make_qdi_adder(4);
    const auto md = cad::techmap(adder.nl, adder.hints);
    ArchSpec tiny;
    tiny.width = 2;
    tiny.height = 2;
    const auto pd = cad::pack(md, tiny);
    EXPECT_THROW(cad::place(pd, md, tiny, {}), base::Error);
}

// --- full flow ----------------------------------------------------------------------

TEST(Flow, QdiFullAdderPostRouteEquivalence) {
    auto adder = asynclib::make_qdi_adder(1);
    const ArchSpec arch;
    FlowOptions opts;
    opts.seed = 3;
    const auto fr = run_flow(adder.nl, adder.hints, arch, opts);
    EXPECT_TRUE(fr.routing.success);

    PostRouteSim prs(fr);
    Simulator& sim = *prs.sim;

    const auto iface = testsupport::qdi_adder_iface(prs.design.nl, 1);
    for (std::uint64_t v = 0; v < 8; ++v) {
        const std::uint64_t a = v & 1;
        const std::uint64_t b = (v >> 1) & 1;
        const std::uint64_t cin = (v >> 2) & 1;
        EXPECT_EQ(sim::qdi_apply_token(sim, iface, v), a + b + cin) << "v=" << v;
    }
}

TEST(Flow, QdiRippleAdderPostRouteEquivalence) {
    auto adder = asynclib::make_qdi_adder(2);
    const ArchSpec arch;
    FlowOptions opts;
    opts.seed = 11;
    const auto fr = run_flow(adder.nl, adder.hints, arch, opts);

    PostRouteSim prs(fr);
    Simulator& sim = *prs.sim;
    const auto iface = testsupport::qdi_adder_iface(prs.design.nl, 2);
    for (std::uint64_t v = 0; v < 32; ++v) {
        const std::uint64_t a = v & 3;
        const std::uint64_t b = (v >> 2) & 3;
        const std::uint64_t cin = (v >> 4) & 1;
        EXPECT_EQ(sim::qdi_apply_token(sim, iface, v), a + b + cin) << "v=" << v;
    }
}

TEST(Flow, MicropipelineAdderPostRouteEquivalence) {
    auto adder = asynclib::make_micropipeline_adder(1);
    const ArchSpec arch;
    FlowOptions opts;
    opts.seed = 5;
    const auto fr = run_flow(adder.nl, {}, arch, opts);

    PostRouteSim prs(fr);
    Simulator& sim = *prs.sim;
    const auto iface = testsupport::mp_adder_iface(prs.design.nl, 1);
    for (std::uint64_t v = 0; v < 8; ++v) {
        const std::uint64_t expect = (v & 1) + ((v >> 1) & 1) + ((v >> 2) & 1);
        EXPECT_EQ(sim::bundled_apply_token(sim, iface, v, 200), expect) << "v=" << v;
    }
}

TEST(Flow, MicropipelineBundlingHoldsPostRoute) {
    auto adder = asynclib::make_micropipeline_adder(1);
    const ArchSpec arch;
    FlowOptions opts;
    opts.seed = 5;
    opts.pde_extra_margin = 2.0;
    const auto fr = run_flow(adder.nl, {}, arch, opts);
    PostRouteSim prs(fr);
    Simulator& sim = *prs.sim;
    const auto iface = testsupport::mp_adder_iface(prs.design.nl, 1);
    sim::BundledChannelMonitor mon(sim, iface.data_out, iface.req_out, iface.ack_out, "out");
    for (std::uint64_t v = 0; v < 8; ++v) (void)sim::bundled_apply_token(sim, iface, v, 200);
    EXPECT_TRUE(mon.violations().empty())
        << (mon.violations().empty() ? "" : mon.violations()[0].what);
}

TEST(Flow, BitstreamRoundTripPreservesBehaviour) {
    auto adder = asynclib::make_qdi_adder(1);
    const ArchSpec arch;
    const auto fr = run_flow(adder.nl, adder.hints, arch, {});
    // serialize -> deserialize -> elaborate must equal direct elaboration
    const auto serial = fr.bits->serialize();
    const auto back = core::Bitstream::deserialize(arch, serial);
    EXPECT_TRUE(*fr.bits == back);
    const auto d1 = core::elaborate(*fr.rr, back, fr.pad_names);
    const auto d2 = fr.elaborate();
    EXPECT_EQ(d1.nl.num_cells(), d2.nl.num_cells());
    EXPECT_EQ(d1.nl.num_nets(), d2.nl.num_nets());
}

TEST(Flow, DeterministicBitstreamForSeed) {
    auto adder = asynclib::make_qdi_adder(1);
    const ArchSpec arch;
    FlowOptions opts;
    opts.seed = 77;
    const auto a = run_flow(adder.nl, adder.hints, arch, opts);
    const auto b = run_flow(adder.nl, adder.hints, arch, opts);
    EXPECT_TRUE(a.bits->serialize() == b.bits->serialize());
}

TEST(Flow, RoutingFailsGracefullyOnStarvedChannels) {
    auto adder = asynclib::make_qdi_adder(4);
    ArchSpec starved;
    starved.channel_width = 2;
    starved.fc_in = 1.0;
    starved.fc_out = 1.0;
    cad::FlowOptions opts;
    opts.route.max_iterations = 5;
    EXPECT_THROW(run_flow(adder.nl, adder.hints, starved, opts), base::Error);
}

TEST(Flow, WchbFifoPostRouteStreams) {
    auto fifo = asynclib::make_wchb_fifo(2, 2);
    const ArchSpec arch;
    FlowOptions opts;
    opts.seed = 9;
    const auto fr = run_flow(fifo.nl, fifo.hints, arch, opts);
    PostRouteSim prs(fr);
    Simulator& sim = *prs.sim;
    const auto& design = prs.design;

    std::vector<asynclib::DualRail> in_rails;
    for (std::size_t i = 0; i < 2; ++i)
        in_rails.push_back(find_rails(design.nl, base::bus_bit("in", i)));
    std::vector<asynclib::DualRail> out_rails;
    for (std::size_t i = 0; i < 2; ++i)
        out_rails.push_back(testsupport::po_rails(design.nl, base::bus_bit("out", i)));
    const NetId ack_in = po_net(design.nl, "ack_in");
    const NetId ack_out = design.nl.find_net("ack_out");

    std::vector<std::uint64_t> tokens{3, 0, 1, 2, 3, 1};
    sim::DrStreamSource src(sim, in_rails, ack_in, tokens, 100);
    sim::DrStreamSink sink(sim, out_rails, ack_out, 100);
    src.start();
    const auto r = sim.run(500'000'000);
    EXPECT_TRUE(r.quiescent);
    EXPECT_EQ(sink.received(), tokens);
}

}  // namespace
