// The reworked router search kernel (pooled heap, SoA hot data, epoch-marked
// scratch) against its hard contract: bit-identical routing decisions to the
// pre-rework reference kernel — same trees, same bitstreams, at any thread
// count — plus the pooled-heap ordering equivalence, epoch wraparound safety
// and the zero-steady-state-allocation property the bench tier gates on.
#include <gtest/gtest.h>

#include <cstdint>
#include <queue>
#include <random>
#include <vector>

#include "asynclib/adders.hpp"
#include "asynclib/fifos.hpp"
#include "base/threadpool.hpp"
#include "cad/flow.hpp"
#include "cad/route.hpp"
#include "cad/route_parallel.hpp"
#include "cad/route_search.hpp"
#include "core/rrgraph.hpp"
#include "support/flow_fixtures.hpp"

namespace {

using namespace afpga;
using cad::RouteRequest;
using cad::RouterOptions;
using cad::RoutingResult;
using cad::detail::HeapItem;
using cad::detail::NetRouteState;
using cad::detail::PooledHeap;
using cad::detail::SearchScratch;
using core::ArchSpec;
using core::PlbCoord;
using core::RRGraph;

ArchSpec arch_of(std::uint32_t w, std::uint32_t h, std::uint32_t cw) {
    ArchSpec a;
    a.width = w;
    a.height = h;
    a.channel_width = cw;
    return a;
}

RouteRequest plb_to_plb(PlbCoord from, PlbCoord to) {
    RouteRequest rq;
    rq.src_plb = from;
    RouteRequest::Sink sk;
    sk.plb = to;
    rq.sinks.push_back(sk);
    return rq;
}

// Same mix as test_parallel_route: four quadrant-local nets, local traffic,
// and cut-crossing boundary nets on a 13x13 fabric.
std::vector<RouteRequest> quadrant_mix() {
    std::vector<RouteRequest> reqs;
    reqs.push_back(plb_to_plb({0, 0}, {3, 3}));
    reqs.push_back(plb_to_plb({8, 0}, {11, 3}));
    reqs.push_back(plb_to_plb({0, 8}, {3, 11}));
    reqs.push_back(plb_to_plb({8, 8}, {11, 11}));
    for (std::uint32_t i = 0; i < 4; ++i) {
        reqs.push_back(plb_to_plb({i, 1}, {3 - i, 2}));
        reqs.push_back(plb_to_plb({8 + i, 1}, {11 - i, 2}));
    }
    reqs.push_back(plb_to_plb({2, 2}, {10, 2}));
    reqs.push_back(plb_to_plb({2, 2}, {2, 10}));
    reqs.push_back(plb_to_plb({0, 0}, {12, 12}));
    return reqs;
}

/// Deep equality of two routing results, down to every tree edge and delay.
void expect_identical_routing(const RoutingResult& a, const RoutingResult& b) {
    ASSERT_EQ(a.success, b.success);
    EXPECT_EQ(a.iterations, b.iterations);
    EXPECT_EQ(a.wirelength, b.wirelength);
    EXPECT_EQ(a.overuse_trajectory, b.overuse_trajectory);
    EXPECT_EQ(a.overuse_report, b.overuse_report);
    ASSERT_EQ(a.trees.size(), b.trees.size());
    for (std::size_t i = 0; i < a.trees.size(); ++i) {
        EXPECT_EQ(a.trees[i].root_opin, b.trees[i].root_opin) << "net " << i;
        EXPECT_EQ(a.trees[i].edges, b.trees[i].edges) << "net " << i;
        ASSERT_EQ(a.trees[i].sinks.size(), b.trees[i].sinks.size());
        for (std::size_t s = 0; s < a.trees[i].sinks.size(); ++s) {
            EXPECT_EQ(a.trees[i].sinks[s].ipin, b.trees[i].sinks[s].ipin);
            EXPECT_EQ(a.trees[i].sinks[s].delay_ps, b.trees[i].sinks[s].delay_ps);
        }
    }
}

/// Run `f` with the reference kernel selected, restoring the default after.
template <typename F>
auto with_reference_kernel(F&& f) {
    cad::detail::set_use_reference_kernel(true);
    auto r = f();
    cad::detail::set_use_reference_kernel(false);
    return r;
}

// ---------------------------------------------------------------------------
// Pooled heap vs std::priority_queue
// ---------------------------------------------------------------------------

// The kernel's bit-identity hinges on the pooled heap popping in EXACTLY
// std::priority_queue's order, ties included (a tie decides which target pin
// wins a search). std::priority_queue::push/pop are specified as
// push_back+push_heap / pop_heap+pop_back — the pooled heap must be
// indistinguishable on any interleaved push/pop stream.
TEST(PooledHeap, MatchesPriorityQueueOnRandomStreams) {
    for (std::uint32_t seed : {1u, 7u, 1234u, 987654u}) {
        std::mt19937 rng(seed);
        // Discrete costs make ties common; node ids break them (or don't —
        // equal-cost equal-node duplicates are legal too).
        std::uniform_int_distribution<int> cost(0, 9);
        std::uniform_int_distribution<int> node(0, 31);
        std::uniform_int_distribution<int> action(0, 3);

        PooledHeap pooled;
        std::priority_queue<HeapItem> ref;
        for (int step = 0; step < 5000; ++step) {
            if (action(rng) == 0 && !ref.empty()) {
                const HeapItem a = pooled.pop();
                const HeapItem b = ref.top();
                ref.pop();
                ASSERT_EQ(a.cost, b.cost) << "seed " << seed << " step " << step;
                ASSERT_EQ(a.backward, b.backward) << "seed " << seed << " step " << step;
                ASSERT_EQ(a.node, b.node) << "seed " << seed << " step " << step;
            } else {
                const double c = static_cast<double>(cost(rng));
                const HeapItem it{c, c * 0.5, static_cast<std::uint32_t>(node(rng))};
                pooled.push(it);
                ref.push(it);
            }
        }
        // Drain: full pop order must agree.
        while (!ref.empty()) {
            const HeapItem a = pooled.pop();
            const HeapItem b = ref.top();
            ref.pop();
            ASSERT_EQ(a.cost, b.cost);
            ASSERT_EQ(a.backward, b.backward);
            ASSERT_EQ(a.node, b.node);
        }
        EXPECT_TRUE(pooled.empty());
    }
}

TEST(PooledHeap, ClearRetainsCapacityAndPushReportsGrowth) {
    PooledHeap h;
    std::uint64_t grows = 0;
    for (std::uint32_t i = 0; i < 1000; ++i)
        if (h.push({static_cast<double>(999 - i), 0.0, i})) ++grows;
    EXPECT_GT(grows, 0u);
    EXPECT_LE(grows, 1000u);
    const std::size_t cap = h.capacity();
    h.clear();
    EXPECT_TRUE(h.empty());
    EXPECT_EQ(h.capacity(), cap);
    // Refilling within retained capacity is allocation-free.
    for (std::uint32_t i = 0; i < 1000; ++i)
        EXPECT_FALSE(h.push({static_cast<double>(i), 0.0, i})) << i;
    EXPECT_EQ(h.capacity(), cap);
}

// ---------------------------------------------------------------------------
// Kernel vs reference kernel, single searches
// ---------------------------------------------------------------------------

// Drive both kernels through the same evolving congestion state (separate occ
// arrays, updated identically by each kernel's own commits) and demand the
// same trees, node sets and occupancy after every net.
TEST(RouteKernel, MatchesReferenceNetByNet) {
    const RRGraph rr(arch_of(9, 9, 6));
    RouterOptions opts;
    std::vector<RouteRequest> reqs;
    for (std::uint32_t i = 0; i < 8; ++i) reqs.push_back(plb_to_plb({i, 0}, {8 - i, 8}));
    // A multicast net and a pad-to-PLB net for coverage.
    RouteRequest multi = plb_to_plb({4, 4}, {0, 0});
    RouteRequest::Sink extra;
    extra.plb = {8, 8};
    multi.sinks.push_back(extra);
    reqs.push_back(multi);
    RouteRequest pad;
    pad.src_is_pad = true;
    pad.src_pad = 1;
    RouteRequest::Sink ps;
    ps.plb = {4, 4};
    pad.sinks.push_back(ps);
    reqs.push_back(pad);

    const std::size_t N = rr.num_nodes();
    std::vector<double> hist(N, 0.0);
    // Nonzero history on a stripe so the cost surface is not flat.
    for (std::size_t n = 0; n < N; n += 7) hist[n] = 3.0;
    std::vector<std::uint16_t> occ_new(N, 0);
    std::vector<std::uint16_t> occ_ref(N, 0);
    SearchScratch scratch_new(N);
    SearchScratch scratch_ref(N);

    for (double pres_fac : {0.6, 1.7}) {
        for (std::size_t ri = 0; ri < reqs.size(); ++ri) {
            const NetRouteState a = cad::detail::route_one_net(
                rr, reqs[ri], opts, pres_fac, hist, occ_new, scratch_new, nullptr);
            const NetRouteState b = cad::detail::route_one_net_reference(
                rr, reqs[ri], opts, pres_fac, hist, occ_ref, scratch_ref, nullptr);
            EXPECT_EQ(a.all_sinks_found, b.all_sinks_found) << "net " << ri;
            EXPECT_EQ(a.nodes, b.nodes) << "net " << ri;
            EXPECT_EQ(a.tree.root_opin, b.tree.root_opin) << "net " << ri;
            EXPECT_EQ(a.tree.edges, b.tree.edges) << "net " << ri;
            ASSERT_EQ(a.tree.sinks.size(), b.tree.sinks.size());
            for (std::size_t s = 0; s < a.tree.sinks.size(); ++s)
                EXPECT_EQ(a.tree.sinks[s].ipin, b.tree.sinks[s].ipin)
                    << "net " << ri << " sink " << s;
        }
        EXPECT_EQ(occ_new, occ_ref);
    }
    EXPECT_GT(scratch_new.stats.heap_pops, 0u);
    EXPECT_GT(scratch_new.stats.nodes_expanded, 0u);
    EXPECT_GE(scratch_new.stats.heap_pushes, scratch_new.stats.heap_pops);
}

// Bounding-box confinement must agree too (the parallel router's mode).
TEST(RouteKernel, MatchesReferenceUnderBBox) {
    const RRGraph rr(arch_of(13, 13, 10));
    RouterOptions opts;
    const RouteRequest rq = plb_to_plb({1, 1}, {5, 5});
    const cad::detail::RouteBBox box{0, 0, 6, 6};
    const std::size_t N = rr.num_nodes();
    std::vector<double> hist(N, 0.0);
    std::vector<std::uint16_t> occ_a(N, 0);
    std::vector<std::uint16_t> occ_b(N, 0);
    SearchScratch sa(N);
    SearchScratch sb(N);
    const NetRouteState a =
        cad::detail::route_one_net(rr, rq, opts, 0.6, hist, occ_a, sa, &box);
    const NetRouteState b =
        cad::detail::route_one_net_reference(rr, rq, opts, 0.6, hist, occ_b, sb, &box);
    EXPECT_EQ(a.nodes, b.nodes);
    EXPECT_EQ(a.tree.edges, b.tree.edges);
    EXPECT_EQ(occ_a, occ_b);
}

// ---------------------------------------------------------------------------
// Epoch wraparound
// ---------------------------------------------------------------------------

// Drive the per-sink and per-net epoch counters across the 32-bit wraparound
// (with plausible stale stamps in the arrays) and demand the same result a
// fresh scratch produces: the wash-on-overflow must leave no stale label
// aliasing a reissued epoch.
TEST(RouteKernel, EpochStampWraparoundIsInvisible) {
    const RRGraph rr(arch_of(9, 9, 8));
    RouterOptions opts;
    // One net with many sinks (each sink consumes one mark epoch) so a single
    // call crosses the wraparound.
    RouteRequest rq;
    rq.src_plb = {4, 4};
    for (std::uint32_t i = 0; i < 8; ++i) {
        RouteRequest::Sink sk;
        sk.plb = {i, 8};
        rq.sinks.push_back(sk);
    }
    const std::size_t N = rr.num_nodes();
    std::vector<double> hist(N, 0.0);

    std::vector<std::uint16_t> occ_fresh(N, 0);
    SearchScratch fresh(N);
    const NetRouteState want =
        cad::detail::route_one_net(rr, rq, opts, 0.6, hist, occ_fresh, fresh, nullptr);

    std::vector<std::uint16_t> occ_wrap(N, 0);
    SearchScratch wrap(N);
    // Mid-life scratch: counters a few epochs from overflow, arrays holding
    // stale-but-legal stamps (values the counter actually passed through).
    wrap.mark = UINT32_MAX - 3;
    wrap.tree_epoch = UINT32_MAX;  // wraps on this net's begin_net()
    std::fill(wrap.visit_mark.begin(), wrap.visit_mark.end(), UINT32_MAX - 7);
    std::fill(wrap.target_mark.begin(), wrap.target_mark.end(), UINT32_MAX - 9);
    std::fill(wrap.tree_mark.begin(), wrap.tree_mark.end(), UINT32_MAX);
    std::fill(wrap.best.begin(), wrap.best.end(), -1.0);  // stale garbage
    const NetRouteState got =
        cad::detail::route_one_net(rr, rq, opts, 0.6, hist, occ_wrap, wrap, nullptr);

    EXPECT_EQ(got.nodes, want.nodes);
    EXPECT_EQ(got.tree.root_opin, want.tree.root_opin);
    EXPECT_EQ(got.tree.edges, want.tree.edges);
    ASSERT_EQ(got.tree.sinks.size(), want.tree.sinks.size());
    for (std::size_t s = 0; s < want.tree.sinks.size(); ++s)
        EXPECT_EQ(got.tree.sinks[s].ipin, want.tree.sinks[s].ipin) << "sink " << s;
    EXPECT_EQ(occ_wrap, occ_fresh);
    // The per-sink counter must have wrapped and restarted low.
    EXPECT_LT(wrap.mark, 16u);
    EXPECT_LT(wrap.tree_epoch, 16u);
}

// ---------------------------------------------------------------------------
// Full-router equivalence: serial, parallel, thread matrix
// ---------------------------------------------------------------------------

TEST(RouteKernel, SerialRouterBitIdenticalToReference) {
    const RRGraph rr(arch_of(13, 13, 8));
    // Congested enough to take several PathFinder iterations, exercising
    // rip-up, history costs and the stall/full-reroute path on both kernels.
    std::vector<RouteRequest> reqs;
    for (std::uint32_t i = 0; i < 12; ++i) reqs.push_back(plb_to_plb({i, 0}, {6, 12}));
    for (std::uint32_t i = 0; i < 12; ++i)
        if (i != 6) reqs.push_back(plb_to_plb({6, 12 - i}, {i, 0}));
    const RoutingResult a = cad::route(rr, reqs, {});
    const RoutingResult b = with_reference_kernel([&] { return cad::route(rr, reqs, {}); });
    ASSERT_TRUE(a.success);
    EXPECT_GT(a.iterations, 1);
    expect_identical_routing(a, b);
    EXPECT_GT(a.kernel.heap_pops, 0u);
    EXPECT_EQ(a.kernel.steady_allocations, 0u);
    EXPECT_EQ(b.kernel.heap_pops, 0u) << "reference kernel fills no telemetry";
}

TEST(RouteKernel, ParallelRouterBitIdenticalToReferenceAcrossThreads) {
    const RRGraph rr(arch_of(13, 13, 10));
    const auto reqs = quadrant_mix();
    for (unsigned t : {1u, 2u, 4u, 8u}) {
        base::ThreadPool pool(t);
        const RoutingResult a = cad::route_parallel(rr, reqs, {}, pool);
        const RoutingResult b =
            with_reference_kernel([&] { return cad::route_parallel(rr, reqs, {}, pool); });
        ASSERT_TRUE(a.success) << t << " threads";
        expect_identical_routing(a, b);
        EXPECT_GT(a.kernel.heap_pops, 0u);
    }
}

TEST(RouteKernel, FailureReportBitIdenticalToReference) {
    // Saturate a tiny fabric so routing fails: the overuse report (built by
    // the rewritten one-pass scan) must match the quadratic reference
    // string-for-string.
    const RRGraph rr(arch_of(4, 4, 2));
    std::vector<RouteRequest> reqs;
    for (std::uint32_t i = 0; i < 4; ++i)
        for (std::uint32_t j = 0; j < 3; ++j) reqs.push_back(plb_to_plb({i, 0}, {3 - i, 3}));
    RouterOptions opts;
    opts.max_iterations = 4;
    const RoutingResult a = cad::route(rr, reqs, opts);
    const RoutingResult b = with_reference_kernel([&] { return cad::route(rr, reqs, opts); });
    EXPECT_EQ(a.success, b.success);
    EXPECT_EQ(a.overuse_report, b.overuse_report);
    EXPECT_EQ(a.overused_nodes, b.overused_nodes);
}

// Kernel counters are decision-deterministic: every thread count reports the
// same pushes/pops/expansions (only search_ms may differ).
TEST(RouteKernel, CountersInvariantAcrossThreadCounts) {
    const RRGraph rr(arch_of(13, 13, 10));
    const auto reqs = quadrant_mix();
    std::vector<RoutingResult> results;
    for (unsigned t : {1u, 2u, 4u, 8u}) {
        base::ThreadPool pool(t);
        results.push_back(cad::route_parallel(rr, reqs, {}, pool));
        ASSERT_TRUE(results.back().success);
    }
    for (std::size_t i = 1; i < results.size(); ++i) {
        EXPECT_EQ(results[i].kernel.heap_pushes, results[0].kernel.heap_pushes);
        EXPECT_EQ(results[i].kernel.heap_pops, results[0].kernel.heap_pops);
        EXPECT_EQ(results[i].kernel.nodes_expanded, results[0].kernel.nodes_expanded);
        EXPECT_EQ(results[i].kernel.edges_scanned, results[0].kernel.edges_scanned);
        EXPECT_EQ(results[i].kernel.wavefront_peak, results[0].kernel.wavefront_peak);
        EXPECT_EQ(results[i].kernel.nets_routed, results[0].kernel.nets_routed);
    }
}

// ---------------------------------------------------------------------------
// End-to-end bitstream matrix: full flows, both kernels, threads 0/1/2/4/8
// ---------------------------------------------------------------------------

TEST(RouteKernel, FlowBitstreamsIdenticalToReferenceAcrossThreads) {
    struct Fixture {
        const char* name;
        netlist::Netlist nl;
        asynclib::MappingHints hints;
    };
    std::vector<Fixture> fixtures;
    {
        auto adder = asynclib::make_qdi_adder(2);
        fixtures.push_back({"qdi_adder2", std::move(adder.nl), std::move(adder.hints)});
        auto fifo = asynclib::make_wchb_fifo(2, 2);
        fixtures.push_back({"wchb_fifo2x2", std::move(fifo.nl), std::move(fifo.hints)});
    }
    for (const Fixture& fx : fixtures) {
        for (unsigned t : {0u, 1u, 2u, 4u, 8u}) {
            cad::FlowOptions opts;
            opts.seed = 424242;
            opts.route.threads = t;
            const auto a = cad::run_flow(fx.nl, fx.hints, core::ArchSpec{}, opts);
            const auto b = with_reference_kernel(
                [&] { return cad::run_flow(fx.nl, fx.hints, core::ArchSpec{}, opts); });
            EXPECT_EQ(testsupport::flow_fingerprint(a), testsupport::flow_fingerprint(b))
                << fx.name << " threads=" << t;
            EXPECT_TRUE(a.bits->serialize() == b.bits->serialize())
                << fx.name << " threads=" << t;
        }
    }
}

// ---------------------------------------------------------------------------
// Zero steady-state allocation
// ---------------------------------------------------------------------------

TEST(RouteKernel, ZeroSteadyStateAllocations) {
    // Multi-iteration congested run: after iteration 1 warms the pooled
    // heap/buffers, the wavefront loop must never grow a buffer again.
    const RRGraph rr(arch_of(13, 13, 8));
    std::vector<RouteRequest> reqs;
    for (std::uint32_t i = 0; i < 12; ++i) reqs.push_back(plb_to_plb({i, 0}, {6, 12}));
    for (std::uint32_t i = 0; i < 12; ++i)
        if (i != 6) reqs.push_back(plb_to_plb({6, 12 - i}, {i, 0}));
    const RoutingResult res = cad::route(rr, reqs, {});
    ASSERT_TRUE(res.success);
    ASSERT_GT(res.iterations, 1) << "fixture must negotiate congestion";
    EXPECT_GT(res.kernel.allocations, 0u) << "warm-up growth should be visible";
    EXPECT_EQ(res.kernel.steady_allocations, 0u);
    EXPECT_GT(res.kernel.heap_pops, 0u);
    EXPECT_GT(res.kernel.wavefront_peak, 0u);
}

}  // namespace
