// End-to-end CAD-flow regression harness.
//
// Drives two representative designs — a dual-rail (QDI) ripple-carry adder
// and a bundled-data micropipeline FIFO — through the complete pipeline:
// elaborate -> techmap -> pack -> place (annealing, fixed seed) -> route ->
// bitstream, then reconstructs the implemented netlist from the bitstream
// and simulates it against the behavioural (source netlist) model. Every
// stage's artifact is checked for structural legality, and the whole flow
// is checked to be seed-stable, so later placer/router optimisation PRs
// have a trustworthy baseline to diff against.
#include <gtest/gtest.h>

#include <set>
#include <utility>

#include "asynclib/adders.hpp"
#include "asynclib/fifos.hpp"
#include "cad/flow.hpp"
#include "sim/channels.hpp"
#include "sim/monitors.hpp"
#include "sim/simulator.hpp"
#include "sim/testbench.hpp"
#include "support/flow_fixtures.hpp"

namespace {

using namespace afpga;
using testsupport::PostRouteSim;

constexpr std::uint64_t kSeed = 2026;

// Structural legality of every intermediate artifact the flow produced.
void expect_legal_flow_result(const cad::FlowResult& fr, std::size_t n_clusters_max) {
    // techmap: at least one LE, and the mapping was verified by the flow.
    EXPECT_FALSE(fr.mapped.les.empty());
    // pack: every cluster within architectural capacity.
    ASSERT_FALSE(fr.packed.clusters.empty());
    EXPECT_LE(fr.packed.clusters.size(), n_clusters_max);
    for (const auto& c : fr.packed.clusters) {
        EXPECT_LE(c.le_indices.size(), fr.arch.les_per_plb);
        EXPECT_LE(c.external_inputs(fr.mapped).size(), fr.arch.plb_inputs);
    }
    // place: on-grid, one cluster per PLB, pads unique.
    ASSERT_EQ(fr.placement.cluster_loc.size(), fr.packed.clusters.size());
    std::set<std::pair<std::uint32_t, std::uint32_t>> used;
    for (const auto& c : fr.placement.cluster_loc) {
        EXPECT_LT(c.x, fr.arch.width);
        EXPECT_LT(c.y, fr.arch.height);
        EXPECT_TRUE(used.emplace(c.x, c.y).second) << "two clusters on one PLB";
    }
    std::set<std::uint32_t> pads;
    for (const auto& [n, p] : fr.placement.pi_pad) EXPECT_TRUE(pads.insert(p).second);
    for (const auto& [n, p] : fr.placement.po_pad) EXPECT_TRUE(pads.insert(p).second);
    // route: converged, nothing overused, every tree rooted.
    EXPECT_TRUE(fr.routing.success);
    EXPECT_EQ(fr.routing.overused_nodes, 0u);
    for (const auto& t : fr.routing.trees) EXPECT_NE(t.root_opin, UINT32_MAX);
    // bitstream: present and round-trippable.
    ASSERT_NE(fr.bits, nullptr);
    EXPECT_GT(fr.bits->serialize().size(), 0u);
}

TEST(FlowE2E, QdiRippleAdderImplementationMatchesBehaviouralModel) {
    auto adder = asynclib::make_qdi_adder(2);
    cad::FlowOptions opts;
    opts.seed = kSeed;
    const auto fr = cad::run_flow(adder.nl, adder.hints, core::ArchSpec{}, opts);
    expect_legal_flow_result(fr, fr.arch.width * fr.arch.height);

    // Behavioural model: the source netlist, zero-delay wires.
    sim::Simulator golden(adder.nl);
    golden.run();
    sim::QdiCombIface golden_iface;
    golden_iface.inputs = adder.a;
    golden_iface.inputs.insert(golden_iface.inputs.end(), adder.b.begin(), adder.b.end());
    golden_iface.inputs.push_back(adder.cin);
    golden_iface.outputs = adder.sum;
    golden_iface.outputs.push_back(adder.cout);
    golden_iface.done = adder.done;

    // Implementation: elaborated from the bitstream, routed wire delays on.
    PostRouteSim impl(fr);
    const auto impl_iface = testsupport::qdi_adder_iface(impl.design.nl, 2);

    for (std::uint64_t v = 0; v < 32; ++v) {
        const std::uint64_t a = v & 3;
        const std::uint64_t b = (v >> 2) & 3;
        const std::uint64_t cin = (v >> 4) & 1;
        const std::uint64_t want = a + b + cin;
        EXPECT_EQ(sim::qdi_apply_token(golden, golden_iface, v), want) << "golden v=" << v;
        EXPECT_EQ(sim::qdi_apply_token(*impl.sim, impl_iface, v), want) << "impl v=" << v;
    }
}

TEST(FlowE2E, MicropipelineFifoStreamsTokensPostRoute) {
    auto fifo = asynclib::make_micropipeline_fifo(4, 3);
    cad::FlowOptions opts;
    opts.seed = kSeed;
    const auto fr = cad::run_flow(fifo.nl, {}, core::ArchSpec{}, opts);
    expect_legal_flow_result(fr, fr.arch.width * fr.arch.height);

    const std::vector<std::uint64_t> tokens{3, 14, 8, 0, 15, 1, 12, 7};

    // Behavioural model: stream through the source netlist.
    sim::Simulator golden(fifo.nl);
    golden.run();
    sim::BdStreamSource gsrc(golden, fifo.in, fifo.req_in, fifo.ack_in, tokens, 100, 80);
    sim::BdStreamSink gsink(golden, fifo.out, fifo.req_out, fifo.ack_out, 100);
    gsrc.start();
    EXPECT_TRUE(golden.run(500'000'000).quiescent);
    EXPECT_EQ(gsink.received(), tokens);

    // Implementation: same stream through the post-route design, with the
    // bundling constraint monitored on the output channel — the property
    // the routed PDEs exist to guarantee.
    PostRouteSim impl(fr);
    const auto iface = testsupport::mp_fifo_iface(impl.design.nl, 4);
    sim::BundledChannelMonitor mon(*impl.sim, iface.data_out, iface.req_out, iface.ack_out,
                                   "e2e.out");
    sim::BdStreamSource src(*impl.sim, iface.data_in, iface.req_in, iface.ack_in, tokens, 100, 80);
    sim::BdStreamSink sink(*impl.sim, iface.data_out, iface.req_out, iface.ack_out, 100);
    src.start();
    EXPECT_TRUE(impl.sim->run(500'000'000).quiescent);
    EXPECT_EQ(sink.received(), tokens);
    EXPECT_TRUE(mon.violations().empty())
        << (mon.violations().empty() ? "" : mon.violations()[0].what);
}

TEST(FlowE2E, AdderFlowIsSeedStable) {
    auto adder = asynclib::make_qdi_adder(2);
    cad::FlowOptions opts;
    opts.seed = kSeed;
    const auto a = cad::run_flow(adder.nl, adder.hints, core::ArchSpec{}, opts);
    const auto b = cad::run_flow(adder.nl, adder.hints, core::ArchSpec{}, opts);
    EXPECT_EQ(testsupport::flow_fingerprint(a), testsupport::flow_fingerprint(b));
}

TEST(FlowE2E, FifoFlowIsSeedStable) {
    auto fifo = asynclib::make_micropipeline_fifo(4, 3);
    cad::FlowOptions opts;
    opts.seed = kSeed;
    const auto a = cad::run_flow(fifo.nl, {}, core::ArchSpec{}, opts);
    const auto b = cad::run_flow(fifo.nl, {}, core::ArchSpec{}, opts);
    EXPECT_EQ(testsupport::flow_fingerprint(a), testsupport::flow_fingerprint(b));
}

}  // namespace
