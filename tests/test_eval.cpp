// Tests for the evaluation layer: filling-ratio metric, utilisation
// accounting and the synchronous LUT4 baseline mapper.
#include <gtest/gtest.h>

#include "asynclib/adders.hpp"
#include "asynclib/fifos.hpp"
#include "cad/flow.hpp"
#include "eval/baseline.hpp"
#include "eval/metrics.hpp"

namespace {

using namespace afpga;
using netlist::CellFunc;
using netlist::NetId;
using netlist::Netlist;

TEST(FillingRatio, QdiBeatsMicropipeline) {
    const core::ArchSpec arch;
    auto q = asynclib::make_qdi_adder(2);
    auto m = asynclib::make_micropipeline_adder(2);
    const auto fq = eval::filling_ratio(cad::run_flow(q.nl, q.hints, arch, {}));
    const auto fm = eval::filling_ratio(cad::run_flow(m.nl, {}, arch, {}));
    EXPECT_GT(fq.outputs, fm.outputs);  // the paper's headline ordering
}

TEST(FillingRatio, WchbBitLesReachThreeQuarters) {
    // A WCHB latch LE carries two rails + validity: 3 of 4 outputs.
    const core::ArchSpec arch;
    auto fifo = asynclib::make_wchb_fifo(4, 4);
    const auto fr = cad::run_flow(fifo.nl, fifo.hints, arch, {});
    std::size_t full_les = 0;
    for (const auto& le : fr.mapped.les) full_les += (le.used_outputs() == 3);
    EXPECT_GE(full_les, 16u);  // 4 bits x 4 stages
}

TEST(FillingRatio, BoundsAreSane) {
    const core::ArchSpec arch;
    auto q = asynclib::make_qdi_adder(1);
    const auto f = eval::filling_ratio(cad::run_flow(q.nl, q.hints, arch, {}));
    EXPECT_GT(f.outputs, 0.0);
    EXPECT_LE(f.outputs, 1.0);
    EXPECT_GT(f.halves, 0.0);
    EXPECT_LE(f.halves, 1.0);
    EXPECT_LE(f.plb_resources, f.halves);  // plb metric has the bigger denominator
    EXPECT_GT(f.occupied_plbs, 0u);
    EXPECT_EQ(f.used_les, 8u);
}

TEST(Utilization, CountsMatchFlow) {
    const core::ArchSpec arch;
    auto q = asynclib::make_qdi_adder(1);
    const auto fr = cad::run_flow(q.nl, q.hints, arch, {});
    const auto u = eval::utilization(fr);
    EXPECT_EQ(u.plbs_total, arch.width * arch.height);
    EXPECT_EQ(u.plbs_used, fr.bits->occupied_plbs());
    EXPECT_EQ(u.les_used, 8u);
    EXPECT_EQ(u.pads_used, fr.placement.pi_pad.size() + fr.placement.po_pad.size());
    EXPECT_GT(u.routed_nets, 0u);
    EXPECT_GT(u.wires_used, 0u);
    EXPECT_LT(u.channel_occupancy, 0.5);  // tiny design, big fabric
    EXPECT_GT(u.max_net_delay_ps, 0);
    EXPECT_EQ(u.routing_switches_on, fr.bits->num_enabled_edges());
}

TEST(Utilization, SummaryMentionsKeyNumbers) {
    const core::ArchSpec arch;
    auto q = asynclib::make_qdi_adder(1);
    const auto fr = cad::run_flow(q.nl, q.hints, arch, {});
    const std::string s = eval::summarize(fr);
    EXPECT_NE(s.find("PLBs"), std::string::npos);
    EXPECT_NE(s.find("filling"), std::string::npos);
}

TEST(Lut4Baseline, SmallFunctionIsOneLut) {
    Netlist nl;
    const NetId a = nl.add_input("a");
    const NetId b = nl.add_input("b");
    nl.add_output("y", nl.add_cell(CellFunc::And, "y", {a, b}));
    const auto r = eval::map_to_lut4(nl);
    EXPECT_EQ(r.luts, 1u);
    EXPECT_EQ(r.luts_for_memory, 0u);
    EXPECT_EQ(r.feedback_nets, 0u);
}

TEST(Lut4Baseline, CElementIsMemoryLut) {
    Netlist nl;
    const NetId a = nl.add_input("a");
    const NetId b = nl.add_input("b");
    nl.add_output("c", nl.add_cell(CellFunc::C, "c", {a, b}));
    const auto r = eval::map_to_lut4(nl);
    EXPECT_EQ(r.luts, 1u);  // 3 vars incl. feedback: fits one LUT4
    EXPECT_EQ(r.luts_for_memory, 1u);
    EXPECT_EQ(r.feedback_nets, 1u);
}

TEST(Lut4Baseline, WideFunctionDecomposes) {
    Netlist nl;
    std::vector<NetId> ins;
    for (int i = 0; i < 7; ++i) ins.push_back(nl.add_input("i" + std::to_string(i)));
    nl.add_output("y", nl.add_cell(CellFunc::Xor, "y", ins));
    const auto r = eval::map_to_lut4(nl);
    // XOR7 by Shannon about one var: 2x XOR6 trees + mux; known cost 15.
    EXPECT_EQ(r.luts, 15u);
}

TEST(Lut4Baseline, DelayBecomesBufferChain) {
    Netlist nl;
    const NetId a = nl.add_input("a");
    const NetId d = nl.add_cell(CellFunc::Delay, "d", {a});
    nl.set_cell_delay(nl.driver_of(d), 1000);
    nl.add_output("y", d);
    const auto r = eval::map_to_lut4(nl, 150);
    EXPECT_EQ(r.luts_for_delay, 7u);  // ceil(1000/150)
    EXPECT_EQ(r.luts, 7u);
}

TEST(Lut4Baseline, BitUtilizationLowForControlLogic) {
    auto fifo = asynclib::make_micropipeline_fifo(4, 4);
    const auto r = eval::map_to_lut4(fifo.nl);
    EXPECT_GT(r.luts, 20u);
    EXPECT_LT(r.bit_utilization, 0.6);  // narrow control functions waste LUT4 rows
}

TEST(Lut4Baseline, QdiNeedsMoreCellsThanLeHalves) {
    const core::ArchSpec arch;
    auto q = asynclib::make_qdi_adder(2);
    const auto fr = cad::run_flow(q.nl, q.hints, arch, {});
    const auto f = eval::filling_ratio(fr);
    const auto r = eval::map_to_lut4(q.nl);
    EXPECT_GT(r.luts, f.used_les);  // baseline spends more cells than our LEs
}

}  // namespace
