#include "support/flow_fixtures.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "base/check.hpp"
#include "base/strings.hpp"

namespace afpga::testsupport {

asynclib::DualRail find_rails(const netlist::Netlist& nl, const std::string& base) {
    asynclib::DualRail d;
    d.t = nl.find_net(base + ".t");
    d.f = nl.find_net(base + ".f");
    base::check(d.t.valid() && d.f.valid(), "testsupport: missing rails for " + base);
    return d;
}

netlist::NetId po_net(const netlist::Netlist& nl, const std::string& name) {
    for (const auto& [n, net] : nl.primary_outputs())
        if (n == name) return net;
    base::fail("testsupport: missing PO " + name);
}

asynclib::DualRail po_rails(const netlist::Netlist& nl, const std::string& base) {
    asynclib::DualRail d;
    d.t = po_net(nl, base + ".t");
    d.f = po_net(nl, base + ".f");
    return d;
}

PostRouteSim::PostRouteSim(const cad::FlowResult& fr) : design(fr.elaborate()) {
    sim = std::make_unique<sim::Simulator>(design.nl);
    for (const auto& d : core::resolve_wire_delays(design))
        sim->set_sink_delay(d.net, d.sink_idx, d.delay_ps);
    sim->run();
}

sim::QdiCombIface qdi_adder_iface(const netlist::Netlist& nl, std::size_t n_bits) {
    sim::QdiCombIface iface;
    for (std::size_t i = 0; i < n_bits; ++i)
        iface.inputs.push_back(find_rails(nl, base::bus_bit("a", i)));
    for (std::size_t i = 0; i < n_bits; ++i)
        iface.inputs.push_back(find_rails(nl, base::bus_bit("b", i)));
    iface.inputs.push_back(find_rails(nl, "cin"));
    for (std::size_t i = 0; i < n_bits; ++i)
        iface.outputs.push_back(po_rails(nl, base::bus_bit("sum", i)));
    iface.outputs.push_back(po_rails(nl, "cout"));
    iface.done = po_net(nl, "done");
    return iface;
}

sim::BundledStageIface mp_adder_iface(const netlist::Netlist& nl, std::size_t n_bits) {
    sim::BundledStageIface iface;
    for (std::size_t i = 0; i < n_bits; ++i)
        iface.data_in.push_back(nl.find_net(base::bus_bit("a", i)));
    for (std::size_t i = 0; i < n_bits; ++i)
        iface.data_in.push_back(nl.find_net(base::bus_bit("b", i)));
    iface.data_in.push_back(nl.find_net("cin"));
    iface.req_in = nl.find_net("req_in");
    iface.ack_out = nl.find_net("ack_out");
    for (std::size_t i = 0; i < n_bits; ++i)
        iface.data_out.push_back(po_net(nl, base::bus_bit("sum", i)));
    iface.data_out.push_back(po_net(nl, "cout"));
    iface.req_out = po_net(nl, "req_out");
    iface.ack_in = po_net(nl, "ack_in");
    return iface;
}

sim::BundledStageIface mp_fifo_iface(const netlist::Netlist& nl, std::size_t n_bits) {
    sim::BundledStageIface iface;
    for (std::size_t i = 0; i < n_bits; ++i)
        iface.data_in.push_back(nl.find_net(base::bus_bit("in", i)));
    iface.req_in = nl.find_net("req_in");
    iface.ack_out = nl.find_net("ack_out");
    for (std::size_t i = 0; i < n_bits; ++i)
        iface.data_out.push_back(po_net(nl, base::bus_bit("out", i)));
    iface.req_out = po_net(nl, "req_out");
    iface.ack_in = po_net(nl, "ack_in");
    return iface;
}

std::string flow_fingerprint(const cad::FlowResult& fr) {
    std::ostringstream os;
    os << "placement:";
    for (const auto& c : fr.placement.cluster_loc) os << " (" << c.x << "," << c.y << ")";
    os << "\npads:";
    std::map<std::string, std::uint32_t> pads;
    for (const auto& [name, pad] : fr.placement.pi_pad) pads.emplace("pi:" + name, pad);
    for (const auto& [name, pad] : fr.placement.po_pad) pads.emplace("po:" + name, pad);
    for (const auto& [name, pad] : pads) os << " " << name << "=" << pad;
    os << "\nrouting:";
    for (const auto& tree : fr.routing.trees) {
        std::vector<std::uint32_t> edges = tree.edges;
        std::sort(edges.begin(), edges.end());
        os << " [" << tree.root_opin << ":";
        for (std::uint32_t e : edges) os << " " << e;
        os << "]";
    }
    os << "\nbits: " << fr.bits->serialize().to_string() << "\n";
    return os.str();
}

}  // namespace afpga::testsupport
