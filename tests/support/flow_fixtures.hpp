// Shared helpers for tests that drive the full CAD flow and then simulate
// the implemented (post-route) design. Kept out of the individual test
// files so the end-to-end regression, the determinism checks and future
// placer/router PRs all exercise exactly the same harness.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "asynclib/styles.hpp"
#include "cad/flow.hpp"
#include "core/elaborate.hpp"
#include "netlist/netlist.hpp"
#include "sim/simulator.hpp"
#include "sim/testbench.hpp"

namespace afpga::testsupport {

/// Look up the dual-rail pair `base.t` / `base.f` in `nl`; throws if absent.
[[nodiscard]] asynclib::DualRail find_rails(const netlist::Netlist& nl, const std::string& base);

/// Find a primary output net by its PO name; throws if absent.
[[nodiscard]] netlist::NetId po_net(const netlist::Netlist& nl, const std::string& name);

/// A dual-rail pair whose rails are looked up among the primary outputs
/// (post-route POs keep their names while internal nets are renamed).
[[nodiscard]] asynclib::DualRail po_rails(const netlist::Netlist& nl, const std::string& base);

/// The implemented design reconstructed from a flow result, with a
/// simulator whose sink delays carry the routed wire delays — the object
/// post-route behavioural checks run against.
struct PostRouteSim {
    core::ElaboratedDesign design;
    std::unique_ptr<sim::Simulator> sim;

    explicit PostRouteSim(const cad::FlowResult& fr);
};

/// Build the QDI testbench interface (a/b/cin rails in, sum/cout rails +
/// done out) for an n-bit adder, from either the source or the elaborated
/// netlist.
[[nodiscard]] sim::QdiCombIface qdi_adder_iface(const netlist::Netlist& nl, std::size_t n_bits);

/// Build the bundled-data interface for an n-bit micropipeline adder.
[[nodiscard]] sim::BundledStageIface mp_adder_iface(const netlist::Netlist& nl,
                                                    std::size_t n_bits);

/// Build the bundled-data interface for an n-bit micropipeline FIFO.
[[nodiscard]] sim::BundledStageIface mp_fifo_iface(const netlist::Netlist& nl, std::size_t n_bits);

/// A stable fingerprint of everything the flow decided: placement
/// locations, pad assignments, per-net routed wire lists and the serialized
/// bitstream. Two runs agree on this iff the flow was deterministic.
[[nodiscard]] std::string flow_fingerprint(const cad::FlowResult& fr);

}  // namespace afpga::testsupport
