// Unit + property tests for TruthTable and the cell evaluation semantics.
#include <gtest/gtest.h>

#include "base/check.hpp"
#include "base/rng.hpp"
#include "netlist/cells.hpp"
#include "netlist/truthtable.hpp"

namespace {

using afpga::base::Rng;
using afpga::netlist::CellFunc;
using afpga::netlist::Logic;
using afpga::netlist::TruthTable;

TruthTable random_table(std::size_t arity, Rng& rng) {
    return TruthTable::from_function(arity, [&](std::uint32_t) { return rng.chance(0.5); });
}

TEST(TruthTable, ConstantAndIdentity) {
    const auto c1 = TruthTable::constant(3, true);
    EXPECT_TRUE(c1.is_constant());
    for (std::uint32_t m = 0; m < 8; ++m) EXPECT_TRUE(c1.eval(m));
    const auto x1 = TruthTable::identity(3, 1);
    for (std::uint32_t m = 0; m < 8; ++m) EXPECT_EQ(x1.eval(m), ((m >> 1) & 1) != 0);
}

TEST(TruthTable, FromBitsRoundTrip) {
    const auto t = TruthTable::from_bits(3, 0b10010110);  // XOR3
    EXPECT_EQ(t.bits64(), 0b10010110u);
    EXPECT_TRUE(t.eval(0b001));
    EXPECT_FALSE(t.eval(0b011));
}

TEST(TruthTable, SupportDetection) {
    // f = x0 XOR x2 over 4 vars: depends on 0 and 2 only.
    const auto t = TruthTable::from_function(
        4, [](std::uint32_t m) { return ((m & 1) ^ ((m >> 2) & 1)) != 0; });
    EXPECT_TRUE(t.depends_on(0));
    EXPECT_FALSE(t.depends_on(1));
    EXPECT_TRUE(t.depends_on(2));
    EXPECT_FALSE(t.depends_on(3));
    EXPECT_EQ(t.support(), (std::vector<std::size_t>{0, 2}));
}

TEST(TruthTable, CofactorShannon) {
    Rng rng(42);
    for (int iter = 0; iter < 20; ++iter) {
        const auto f = random_table(5, rng);
        for (std::size_t var = 0; var < 5; ++var) {
            const auto f0 = f.cofactor(var, false);
            const auto f1 = f.cofactor(var, true);
            // Shannon: f(m) == (m_var ? f1 : f0)(m without var)
            for (std::uint32_t m = 0; m < 32; ++m) {
                const std::uint32_t lo = m & ((1u << var) - 1);
                const std::uint32_t hi = (m >> (var + 1)) << var;
                const std::uint32_t sub = hi | lo;
                const bool expect = ((m >> var) & 1) ? f1.eval(sub) : f0.eval(sub);
                EXPECT_EQ(f.eval(m), expect);
            }
        }
    }
}

TEST(TruthTable, PruneSupport) {
    const auto t = TruthTable::from_function(
        4, [](std::uint32_t m) { return ((m & 1) & ((m >> 3) & 1)) != 0; });
    std::vector<std::size_t> kept;
    const auto p = t.prune_support(&kept);
    EXPECT_EQ(p.arity(), 2u);
    EXPECT_EQ(kept, (std::vector<std::size_t>{0, 3}));
    EXPECT_TRUE(p.eval(0b11));
    EXPECT_FALSE(p.eval(0b01));
}

TEST(TruthTable, RemapPermutation) {
    Rng rng(7);
    const auto f = random_table(3, rng);
    // Swap vars 0 and 2.
    const auto g = f.remap({2, 1, 0}, 3);
    for (std::uint32_t m = 0; m < 8; ++m) {
        const std::uint32_t swapped = ((m & 1) << 2) | (m & 2) | ((m >> 2) & 1);
        EXPECT_EQ(g.eval(m), f.eval(swapped));
    }
}

TEST(TruthTable, RemapExtend) {
    const auto f = TruthTable::from_bits(2, 0b0110);  // XOR2
    const auto g = f.remap({1, 3}, 5);                // vars 1 and 3 of a 5-var fn
    for (std::uint32_t m = 0; m < 32; ++m)
        EXPECT_EQ(g.eval(m), (((m >> 1) ^ (m >> 3)) & 1) != 0);
}

TEST(TruthTable, BooleanOperators) {
    Rng rng(3);
    const auto a = random_table(4, rng);
    const auto b = random_table(4, rng);
    const auto andt = a & b;
    const auto ort = a | b;
    const auto xort = a ^ b;
    const auto nott = ~a;
    for (std::uint32_t m = 0; m < 16; ++m) {
        EXPECT_EQ(andt.eval(m), a.eval(m) && b.eval(m));
        EXPECT_EQ(ort.eval(m), a.eval(m) || b.eval(m));
        EXPECT_EQ(xort.eval(m), a.eval(m) != b.eval(m));
        EXPECT_EQ(nott.eval(m), !a.eval(m));
    }
}

TEST(TruthTable, ArityLimit) {
    EXPECT_THROW(TruthTable(17), afpga::base::Error);
    EXPECT_NO_THROW(TruthTable(16));
}

// --- cell evaluation ---------------------------------------------------------

TEST(CellEval, ControllingValuesDominateX) {
    using afpga::netlist::eval_cell;
    const std::vector<Logic> and_in{Logic::F, Logic::X};
    EXPECT_EQ(eval_cell(CellFunc::And, and_in, Logic::X), Logic::F);
    const std::vector<Logic> or_in{Logic::T, Logic::X};
    EXPECT_EQ(eval_cell(CellFunc::Or, or_in, Logic::X), Logic::T);
    const std::vector<Logic> xor_in{Logic::T, Logic::X};
    EXPECT_EQ(eval_cell(CellFunc::Xor, xor_in, Logic::X), Logic::X);
}

TEST(CellEval, MullerCHolds) {
    using afpga::netlist::eval_cell;
    const std::vector<Logic> mixed{Logic::T, Logic::F};
    EXPECT_EQ(eval_cell(CellFunc::C, mixed, Logic::F), Logic::F);
    EXPECT_EQ(eval_cell(CellFunc::C, mixed, Logic::T), Logic::T);
    const std::vector<Logic> all_t{Logic::T, Logic::T};
    EXPECT_EQ(eval_cell(CellFunc::C, all_t, Logic::F), Logic::T);
    const std::vector<Logic> all_f{Logic::F, Logic::F};
    EXPECT_EQ(eval_cell(CellFunc::C, all_f, Logic::T), Logic::F);
}

TEST(CellEval, AsymmetricC) {
    using afpga::netlist::eval_cell;
    // rises only on a&b
    EXPECT_EQ(eval_cell(CellFunc::CAsym2P, std::vector<Logic>{Logic::T, Logic::T}, Logic::F),
              Logic::T);
    EXPECT_EQ(eval_cell(CellFunc::CAsym2P, std::vector<Logic>{Logic::T, Logic::F}, Logic::F),
              Logic::F);
    // holds while a stays high
    EXPECT_EQ(eval_cell(CellFunc::CAsym2P, std::vector<Logic>{Logic::T, Logic::F}, Logic::T),
              Logic::T);
    // falls on !a regardless of b
    EXPECT_EQ(eval_cell(CellFunc::CAsym2P, std::vector<Logic>{Logic::F, Logic::T}, Logic::T),
              Logic::F);
}

TEST(CellEval, LatchTransparency) {
    using afpga::netlist::eval_cell;
    EXPECT_EQ(eval_cell(CellFunc::Latch, std::vector<Logic>{Logic::T, Logic::T}, Logic::F),
              Logic::T);
    EXPECT_EQ(eval_cell(CellFunc::Latch, std::vector<Logic>{Logic::T, Logic::F}, Logic::F),
              Logic::F);
}

TEST(CellEval, LutExactXPropagation) {
    using afpga::netlist::eval_cell;
    // f = a OR b: with a=T, b=X the output is known T.
    const auto t = TruthTable::from_bits(2, 0b1110);
    const std::vector<Logic> in{Logic::T, Logic::X};
    EXPECT_EQ(eval_cell(CellFunc::Lut, in, Logic::X, &t), Logic::T);
    const std::vector<Logic> in2{Logic::F, Logic::X};
    EXPECT_EQ(eval_cell(CellFunc::Lut, in2, Logic::X, &t), Logic::X);
}

TEST(CellEval, FeedbackFunctionOfC2IsMajority) {
    // C2 with feedback variable appended equals MAJ(a, b, state).
    const auto t = afpga::netlist::cell_function_with_feedback(CellFunc::C, 2);
    ASSERT_EQ(t.arity(), 3u);
    for (std::uint32_t m = 0; m < 8; ++m) {
        const int ones = ((m & 1) != 0) + ((m & 2) != 0) + ((m & 4) != 0);
        EXPECT_EQ(t.eval(m), ones >= 2) << "m=" << m;
    }
}

TEST(CellEval, PropertyRandomLutMatchesTable) {
    Rng rng(99);
    for (int iter = 0; iter < 50; ++iter) {
        const std::size_t arity = 1 + rng.below(6);
        const auto t = random_table(arity, rng);
        for (std::uint32_t m = 0; m < (1u << arity); ++m) {
            std::vector<bool> in(arity);
            for (std::size_t i = 0; i < arity; ++i) in[i] = (m >> i) & 1u;
            EXPECT_EQ(afpga::netlist::eval_cell_bool(CellFunc::Lut, in, &t), t.eval(m));
        }
    }
}

}  // namespace
