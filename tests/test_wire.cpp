// The cad/wire frame and payload codecs: framing round-trips over arbitrary
// stream splits, every header field is validated, truncation at every prefix
// stays cleanly incomplete, and a deterministic fuzzer mutating every byte
// offset of a valid frame proves the decoder never accepts a corrupted
// frame as valid (mirroring test_serialize's truncation-at-every-prefix
// idiom one layer down). The payload codecs — netlist (with handshake
// feedback cycles and verbatim sink order), hints, flow options and all 18
// messages — are pinned by re-encode byte identity, and Netlist::from_parts
// rejects every class of structurally hostile table.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "asynclib/adders.hpp"
#include "asynclib/fifos.hpp"
#include "base/check.hpp"
#include "cad/wire.hpp"

namespace {

using namespace afpga;
namespace wire = cad::wire;

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

std::vector<std::uint8_t> demo_payload() {
    wire::StatusReplyMsg m;
    m.job_id = 42;
    m.status = 2;
    m.start_seq = 7;
    m.wall_ms = 12.5;
    m.queue_ms = 0.25;
    m.error = "none";
    return wire::encode_payload(m);
}

TEST(WireFrame, RoundTripsWholeAndByteAtATime) {
    const std::vector<std::uint8_t> payload = demo_payload();
    const std::vector<std::uint8_t> frame =
        wire::encode_frame(wire::MsgType::StatusReply, payload);
    ASSERT_EQ(frame.size(), wire::kHeaderBytes + payload.size());

    {
        wire::FrameDecoder dec;
        dec.feed(frame);
        const auto f = dec.next();
        ASSERT_TRUE(f.has_value());
        EXPECT_EQ(f->type, wire::MsgType::StatusReply);
        EXPECT_EQ(f->payload, payload);
        EXPECT_TRUE(dec.idle());
        EXPECT_FALSE(dec.next().has_value());
    }
    {
        // Sockets deliver any split; one byte at a time is the worst case.
        wire::FrameDecoder dec;
        for (std::size_t i = 0; i + 1 < frame.size(); ++i) {
            dec.feed(&frame[i], 1);
            EXPECT_FALSE(dec.next().has_value()) << "complete after " << (i + 1) << " bytes";
        }
        dec.feed(&frame.back(), 1);
        const auto f = dec.next();
        ASSERT_TRUE(f.has_value());
        EXPECT_EQ(f->payload, payload);
    }
}

TEST(WireFrame, BackToBackFramesComeOutInOrder) {
    wire::FrameDecoder dec;
    std::vector<std::uint8_t> stream;
    for (std::uint64_t id = 0; id < 5; ++id) {
        wire::StatusMsg m;
        m.job_id = id;
        const auto frame = wire::encode_frame(wire::MsgType::Status, wire::encode_payload(m));
        stream.insert(stream.end(), frame.begin(), frame.end());
    }
    dec.feed(stream);
    for (std::uint64_t id = 0; id < 5; ++id) {
        const auto f = dec.next();
        ASSERT_TRUE(f.has_value()) << id;
        EXPECT_EQ(wire::decode_status(f->payload).job_id, id);
    }
    EXPECT_TRUE(dec.idle());
}

TEST(WireFrame, EmptyPayloadFrames) {
    const auto frame = wire::encode_frame(wire::MsgType::Drain,
                                          wire::encode_payload(wire::DrainMsg{}));
    wire::FrameDecoder dec;
    dec.feed(frame);
    const auto f = dec.next();
    ASSERT_TRUE(f.has_value());
    EXPECT_EQ(f->type, wire::MsgType::Drain);
    EXPECT_TRUE(f->payload.empty());
}

TEST(WireFrame, TruncationAtEveryPrefixStaysIncomplete) {
    const auto frame = wire::encode_frame(wire::MsgType::StatusReply, demo_payload());
    for (std::size_t cut = 0; cut < frame.size(); ++cut) {
        wire::FrameDecoder dec;
        dec.feed(frame.data(), cut);
        // A prefix of a valid frame is never an error — only incomplete.
        std::optional<wire::Frame> f;
        ASSERT_NO_THROW(f = dec.next()) << "cut at " << cut;
        EXPECT_FALSE(f.has_value()) << "cut at " << cut;
        // Feeding the remainder completes the frame with nothing lost.
        dec.feed(frame.data() + cut, frame.size() - cut);
        ASSERT_NO_THROW(f = dec.next()) << "resume at " << cut;
        ASSERT_TRUE(f.has_value()) << "resume at " << cut;
        EXPECT_EQ(f->payload, demo_payload());
    }
}

void expect_rejected(std::vector<std::uint8_t> frame, const char* what) {
    wire::FrameDecoder dec;
    dec.feed(frame);
    EXPECT_THROW((void)dec.next(), base::Error) << what;
}

TEST(WireFrame, HeaderFieldValidation) {
    const auto good = wire::encode_frame(wire::MsgType::StatusReply, demo_payload());

    auto with_u32 = [&](std::size_t off, std::uint32_t v) {
        std::vector<std::uint8_t> f = good;
        for (int i = 0; i < 4; ++i) f[off + static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>(v >> (8 * i));
        return f;
    };
    expect_rejected(with_u32(0, 0xdeadbeef), "bad magic");
    expect_rejected(with_u32(4, wire::kProtocolVersion + 1), "bad version");
    expect_rejected(with_u32(8, 0), "type zero");
    expect_rejected(with_u32(8, wire::kMaxMsgType + 1), "type past max");
    expect_rejected(with_u32(12, static_cast<std::uint32_t>(wire::kMaxPayloadBytes) + 1),
                    "payload over cap");

    // A flipped payload bit fails the checksum.
    std::vector<std::uint8_t> corrupt = good;
    corrupt[wire::kHeaderBytes] ^= 0x01;
    expect_rejected(std::move(corrupt), "payload bit flip");

    // A flipped type that is still in range fails too: the checksum covers
    // the type bytes, so corruption cannot relabel a valid message.
    std::vector<std::uint8_t> relabel = good;
    relabel[8] = static_cast<std::uint8_t>(wire::MsgType::Status);
    expect_rejected(std::move(relabel), "type relabel");
}

TEST(WireFrame, MutationFuzzEveryByteOffsetRejectsCleanly) {
    // Deterministic fuzz: flip one bit at every byte offset of a valid
    // frame (bit index varies with the offset, so header fields see
    // different corruptions) and feed exactly the mutated bytes. The
    // decoder must never hand back a valid frame: every mutation either
    // throws (magic/version/type/length/checksum validation) or leaves the
    // stream incomplete (a length field grown past the bytes on hand).
    const auto frame = wire::encode_frame(wire::MsgType::StatusReply, demo_payload());
    std::size_t threw = 0;
    std::size_t incomplete = 0;
    for (std::size_t off = 0; off < frame.size(); ++off) {
        std::vector<std::uint8_t> mut = frame;
        mut[off] ^= static_cast<std::uint8_t>(1u << (off % 8));
        wire::FrameDecoder dec;
        dec.feed(mut);
        try {
            const auto f = dec.next();
            EXPECT_FALSE(f.has_value()) << "mutation at offset " << off << " was accepted";
            ++incomplete;
        } catch (const base::Error&) {
            ++threw;  // expected: validation caught the corruption
        }
    }
    EXPECT_EQ(threw + incomplete, frame.size());
    // Both rejection modes must actually occur on this frame shape.
    EXPECT_GT(threw, 0u);
    EXPECT_GT(incomplete, 0u);
}

TEST(WireFrame, TruncatingMutatedLengthNeverCrashes) {
    // Combine the two corruptions: for every byte offset, flip a bit AND
    // truncate the stream right after that offset. Decode must throw or
    // stay incomplete — never crash or accept.
    const auto frame = wire::encode_frame(wire::MsgType::StatusReply, demo_payload());
    for (std::size_t off = 0; off < frame.size(); ++off) {
        std::vector<std::uint8_t> mut(frame.begin(),
                                      frame.begin() + static_cast<std::ptrdiff_t>(off + 1));
        mut[off] ^= 0xff;
        wire::FrameDecoder dec;
        dec.feed(mut);
        try {
            const auto f = dec.next();
            EXPECT_FALSE(f.has_value()) << "offset " << off;
        } catch (const base::Error&) {
            // expected for corrupted-header prefixes
        }
    }
}

TEST(WireFrame, Fnv1a64IsSensitiveToEveryByte) {
    std::vector<std::uint8_t> buf(257);
    for (std::size_t i = 0; i < buf.size(); ++i) buf[i] = static_cast<std::uint8_t>(i * 37);
    const std::uint64_t base_digest = wire::fnv1a64(buf.data(), buf.size());
    for (std::size_t i = 0; i < buf.size(); ++i) {
        buf[i] ^= 0x01;
        EXPECT_NE(wire::fnv1a64(buf.data(), buf.size()), base_digest) << i;
        buf[i] ^= 0x01;
    }
    EXPECT_EQ(wire::fnv1a64(buf.data(), buf.size()), base_digest);
}

TEST(WireFrame, OversizedEncodeThrows) {
    wire::ResultChunkMsg chunk;
    chunk.bytes.assign(wire::kResultChunkBytes + 1, 0);
    EXPECT_THROW((void)wire::encode_payload(chunk), base::Error);
}

// ---------------------------------------------------------------------------
// Payload codecs: re-encode byte identity pins structural equality.
// ---------------------------------------------------------------------------

std::vector<std::uint8_t> netlist_bytes(const netlist::Netlist& nl) {
    cad::BlobWriter w;
    wire::encode_netlist(nl, w);
    return std::move(w).take();
}

void expect_netlist_roundtrip(const netlist::Netlist& nl, const char* what) {
    const std::vector<std::uint8_t> bytes = netlist_bytes(nl);
    cad::BlobReader r(bytes);
    const netlist::Netlist back = wire::decode_netlist(r);
    r.expect_end();
    EXPECT_EQ(back.num_cells(), nl.num_cells()) << what;
    EXPECT_EQ(back.num_nets(), nl.num_nets()) << what;
    EXPECT_EQ(back.name(), nl.name()) << what;
    // Re-encoding must reproduce the bytes exactly — this pins cell order,
    // net order, PI/PO lists and every net's verbatim sink order.
    EXPECT_EQ(netlist_bytes(back), bytes) << what;
}

TEST(WireCodec, NetlistRoundTripsIncludingFeedbackCycles) {
    // The QDI adder's C-elements and the WCHB FIFO's handshake loops give
    // the decoder self-references and cycles the construction API could not
    // replay in arbitrary sink order.
    expect_netlist_roundtrip(asynclib::make_qdi_adder(2).nl, "qdi_adder_2");
    expect_netlist_roundtrip(asynclib::make_wchb_fifo(2, 2).nl, "wchb_fifo_2x2");
    expect_netlist_roundtrip(asynclib::make_micropipeline_adder(2).nl, "mp_adder_2");
    expect_netlist_roundtrip(asynclib::make_mousetrap_fifo(2, 2).nl, "mousetrap_2x2");
}

TEST(WireCodec, HintsRoundTrip) {
    auto fifo = asynclib::make_wchb_fifo(2, 2);
    cad::BlobWriter w;
    wire::encode_hints(fifo.hints, w);
    const std::vector<std::uint8_t> bytes = std::move(w).take();
    cad::BlobReader r(bytes);
    const asynclib::MappingHints back = wire::decode_hints(r);
    r.expect_end();
    EXPECT_EQ(back.rail_pairs, fifo.hints.rail_pairs);
    EXPECT_EQ(back.validity_nets, fifo.hints.validity_nets);
    cad::BlobWriter w2;
    wire::encode_hints(back, w2);
    EXPECT_EQ(std::move(w2).take(), bytes);
}

TEST(WireCodec, FlowOptionsRoundTripNonDefaults) {
    cad::FlowOptions o;
    o.seed = 99;
    o.pde_extra_margin = 0.75;
    o.techmap.pairing_window = 5;
    o.pack.affinity_clustering = false;
    o.place.algorithm = cad::PlaceAlgorithm::Multilevel;
    o.place.threads = 3;
    o.place.alpha = 0.123;
    o.route.astar_fac = 0.0;
    o.route.threads = 2;
    o.route.max_iterations = 17;

    cad::BlobWriter w;
    wire::encode_flow_options(o, w);
    const std::vector<std::uint8_t> bytes = std::move(w).take();
    cad::BlobReader r(bytes);
    const cad::FlowOptions back = wire::decode_flow_options(r);
    r.expect_end();
    EXPECT_EQ(back.seed, o.seed);
    EXPECT_EQ(back.place.algorithm, o.place.algorithm);
    EXPECT_EQ(back.route.max_iterations, o.route.max_iterations);
    cad::BlobWriter w2;
    wire::encode_flow_options(back, w2);
    EXPECT_EQ(std::move(w2).take(), bytes);
}

template <typename Msg, typename Decode>
void expect_msg_roundtrip(const Msg& m, Decode decode, const char* what) {
    const std::vector<std::uint8_t> bytes = wire::encode_payload(m);
    const Msg back = decode(bytes);
    EXPECT_EQ(wire::encode_payload(back), bytes) << what;
}

TEST(WireCodec, EveryMessageRoundTrips) {
    wire::HelloMsg hello;
    hello.client_name = "soak_client";
    expect_msg_roundtrip(hello, wire::decode_hello, "hello");

    wire::HelloOkMsg hello_ok;
    hello_ok.lane = 3;
    hello_ok.max_pending = 64;
    hello_ok.threads = 4;
    expect_msg_roundtrip(hello_ok, wire::decode_hello_ok, "hello_ok");

    auto adder = asynclib::make_qdi_adder(2);
    wire::SubmitMsg submit;
    submit.name = "adder";
    submit.priority = -2;
    submit.nl = adder.nl;
    submit.hints = adder.hints;
    submit.arch.width = submit.arch.height = 10;
    submit.arch.channel_width = 12;
    submit.opts.seed = 5;
    expect_msg_roundtrip(submit, wire::decode_submit, "submit");

    wire::SubmitOkMsg submit_ok;
    submit_ok.job_id = 9;
    submit_ok.queue_depth = 2;
    expect_msg_roundtrip(submit_ok, wire::decode_submit_ok, "submit_ok");

    wire::BusyMsg busy;
    busy.queue_depth = 64;
    busy.limit = 64;
    busy.retry_after_ms = 25;
    expect_msg_roundtrip(busy, wire::decode_busy, "busy");

    wire::StatusMsg status;
    status.job_id = 11;
    expect_msg_roundtrip(status, wire::decode_status, "status");

    wire::StatusReplyMsg reply;
    reply.job_id = 11;
    reply.status = 3;
    reply.start_seq = 4;
    reply.wall_ms = 1.5;
    reply.queue_ms = 2.5;
    reply.error = "boom";
    expect_msg_roundtrip(reply, wire::decode_status_reply, "status_reply");

    wire::WaitMsg wait;
    wait.job_id = 12;
    expect_msg_roundtrip(wait, wire::decode_wait, "wait");

    wire::ResultBeginMsg begin;
    begin.job_id = 12;
    begin.status = 2;
    begin.wall_ms = 9.0;
    begin.queue_ms = 1.0;
    begin.start_seq = 6;
    begin.telemetry_json = "{\"stages\":[]}";
    begin.result_bytes = 123;
    expect_msg_roundtrip(begin, wire::decode_result_begin, "result_begin");

    wire::ResultChunkMsg chunk;
    chunk.job_id = 12;
    chunk.offset = 64;
    chunk.bytes = {1, 2, 3, 4, 5};
    expect_msg_roundtrip(chunk, wire::decode_result_chunk, "result_chunk");

    wire::ResultEndMsg end;
    end.job_id = 12;
    end.checksum = 0xfeedfacefeedfaceull;
    expect_msg_roundtrip(end, wire::decode_result_end, "result_end");

    wire::CancelMsg cancel;
    cancel.job_id = 13;
    expect_msg_roundtrip(cancel, wire::decode_cancel, "cancel");

    wire::CancelReplyMsg cancel_reply;
    cancel_reply.job_id = 13;
    cancel_reply.cancelled = true;
    expect_msg_roundtrip(cancel_reply, wire::decode_cancel_reply, "cancel_reply");

    expect_msg_roundtrip(wire::ReportMsg{}, wire::decode_report, "report");

    wire::ReportReplyMsg report_reply;
    report_reply.json = "{\"jobs_total\":1}";
    expect_msg_roundtrip(report_reply, wire::decode_report_reply, "report_reply");

    expect_msg_roundtrip(wire::DrainMsg{}, wire::decode_drain, "drain");

    wire::DrainOkMsg drain_ok;
    drain_ok.jobs_total = 17;
    expect_msg_roundtrip(drain_ok, wire::decode_drain_ok, "drain_ok");

    wire::ErrorMsg err;
    err.code = static_cast<std::uint32_t>(wire::ErrCode::Draining);
    err.message = "server is draining";
    expect_msg_roundtrip(err, wire::decode_error, "error");
}

TEST(WireCodec, SubmitDecoderValidatesHintNetIds) {
    auto adder = asynclib::make_qdi_adder(2);
    wire::SubmitMsg m;
    m.name = "bad_hints";
    m.nl = adder.nl;
    m.hints.validity_nets.push_back(
        netlist::NetId{static_cast<std::uint32_t>(adder.nl.num_nets())});  // out of range
    EXPECT_THROW((void)wire::decode_submit(wire::encode_payload(m)), base::Error);
}

TEST(WireCodec, TruncatedPayloadsThrowAtEveryPrefix) {
    // The serialize-suite idiom one layer up: every strict prefix of a
    // Submit payload must throw (or, for prefixes that happen to parse,
    // fail expect_end inside the decoder) — never crash or accept.
    auto adder = asynclib::make_qdi_adder(2);
    wire::SubmitMsg m;
    m.name = "trunc";
    m.nl = adder.nl;
    m.hints = adder.hints;
    const std::vector<std::uint8_t> bytes = wire::encode_payload(m);
    // Step through prefixes; byte-exact stepping is quadratic in the blob
    // size, so stride the long middle and always hit the last 64 edges.
    const std::size_t stride = bytes.size() > 2048 ? 7 : 1;
    for (std::size_t cut = 0; cut < bytes.size();
         cut += (cut + 64 >= bytes.size() ? 1 : stride)) {
        const std::vector<std::uint8_t> prefix(
            bytes.begin(), bytes.begin() + static_cast<std::ptrdiff_t>(cut));
        EXPECT_THROW((void)wire::decode_submit(prefix), base::Error) << "cut " << cut;
    }
}

// ---------------------------------------------------------------------------
// Netlist::from_parts: the decoder's trust boundary.
// ---------------------------------------------------------------------------

netlist::NetId nid(std::uint32_t v) { return netlist::NetId{v}; }
netlist::CellId cid(std::uint32_t v) { return netlist::CellId{v}; }

/// A tiny well-formed two-net design as raw tables: PI a -> Buf b0 -> PO.
struct RawParts {
    std::vector<netlist::Cell> cells;
    std::vector<netlist::Net> nets;
    std::vector<netlist::NetId> pis;
    std::vector<std::pair<std::string, netlist::NetId>> pos;
};

RawParts make_raw() {
    using netlist::CellId;
    using netlist::NetId;
    RawParts p;
    netlist::Cell buf;
    buf.func = netlist::CellFunc::Buf;
    buf.name = "b0";
    buf.inputs = {nid(0)};
    buf.output = nid(1);
    p.cells.push_back(std::move(buf));
    netlist::Net a;
    a.name = "a";
    a.is_primary_input = true;
    a.sinks = {{cid(0), 0}};
    netlist::Net b;
    b.name = "b0";
    b.driver = cid(0);
    p.nets.push_back(std::move(a));
    p.nets.push_back(std::move(b));
    p.pis = {nid(0)};
    p.pos = {{"out", nid(1)}};
    return p;
}

netlist::Netlist build(const RawParts& p) {
    return netlist::Netlist::from_parts("raw", p.cells, p.nets, p.pis, p.pos);
}

TEST(NetlistFromParts, AcceptsWellFormedTables) {
    const netlist::Netlist nl = build(make_raw());
    EXPECT_EQ(nl.num_cells(), 1u);
    EXPECT_EQ(nl.num_nets(), 2u);
    EXPECT_EQ(nl.primary_inputs().size(), 1u);
}

TEST(NetlistFromParts, RejectsEveryStructuralCorruption) {
    {
        RawParts p = make_raw();  // cell input net out of range
        p.cells[0].inputs[0] = nid(99);
        EXPECT_THROW((void)build(p), base::Error);
    }
    {
        RawParts p = make_raw();  // cell output net out of range
        p.cells[0].output = nid(99);
        EXPECT_THROW((void)build(p), base::Error);
    }
    {
        RawParts p = make_raw();  // net driver cell out of range
        p.nets[1].driver = cid(5);
        EXPECT_THROW((void)build(p), base::Error);
    }
    {
        RawParts p = make_raw();  // sink points at a cell that does not exist
        p.nets[0].sinks[0].cell = cid(7);
        EXPECT_THROW((void)build(p), base::Error);
    }
    {
        RawParts p = make_raw();  // sink pin past the cell's input count
        p.nets[0].sinks[0].pin = 3;
        EXPECT_THROW((void)build(p), base::Error);
    }
    {
        RawParts p = make_raw();  // duplicate sink for one input pin
        p.nets[0].sinks.push_back(p.nets[0].sinks[0]);
        EXPECT_THROW((void)build(p), base::Error);
    }
    {
        RawParts p = make_raw();  // sink list dropped: edge counts disagree
        p.nets[0].sinks.clear();
        EXPECT_THROW((void)build(p), base::Error);
    }
    {
        RawParts p = make_raw();  // PI flag without a PI-list entry
        p.pis.clear();
        EXPECT_THROW((void)build(p), base::Error);
    }
    {
        RawParts p = make_raw();  // PI-list entry pointing at a driven net
        p.pis = {nid(1)};
        EXPECT_THROW((void)build(p), base::Error);
    }
    {
        RawParts p = make_raw();  // PO net out of range
        p.pos[0].second = nid(9);
        EXPECT_THROW((void)build(p), base::Error);
    }
    {
        RawParts p = make_raw();  // driven net also flagged as primary input
        p.nets[1].is_primary_input = true;
        p.pis.push_back(nid(1));
        EXPECT_THROW((void)build(p), base::Error);
    }
}

}  // namespace
