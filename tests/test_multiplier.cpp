// QDI multiplier tests: netlist-level functionality, strict completion, and
// post-route equivalence through the full flow.
#include <gtest/gtest.h>

#include "asynclib/adders.hpp"
#include "base/check.hpp"
#include "base/strings.hpp"
#include "cad/flow.hpp"
#include "eval/metrics.hpp"
#include "sim/monitors.hpp"
#include "sim/simulator.hpp"
#include "sim/testbench.hpp"
#include "support/flow_fixtures.hpp"

namespace {

using namespace afpga;
using sim::Simulator;

sim::QdiCombIface mul_iface(const asynclib::QdiMultiplier& m) {
    sim::QdiCombIface iface;
    iface.inputs = m.a;
    iface.inputs.insert(iface.inputs.end(), m.b.begin(), m.b.end());
    iface.outputs = m.p;
    iface.done = m.done;
    return iface;
}

class QdiMultiplierTokens : public ::testing::TestWithParam<std::size_t> {};

TEST_P(QdiMultiplierTokens, AllProductsCorrect) {
    const std::size_t n = GetParam();
    auto mul = asynclib::make_qdi_multiplier(n);
    Simulator sim(mul.nl);
    sim.run();
    const auto iface = mul_iface(mul);
    for (std::uint64_t a = 0; a < (1ULL << n); ++a)
        for (std::uint64_t b = 0; b < (1ULL << n); ++b) {
            const std::uint64_t got = sim::qdi_apply_token(sim, iface, a | (b << n));
            EXPECT_EQ(got, a * b) << "a=" << a << " b=" << b;
        }
}

INSTANTIATE_TEST_SUITE_P(Widths, QdiMultiplierTokens, ::testing::Values(1, 2, 3));

TEST(QdiMultiplier, ProtocolCleanUnderMonitors) {
    auto mul = asynclib::make_qdi_multiplier(2);
    Simulator sim(mul.nl);
    sim.run();
    sim::DualRailChannelMonitor mon(sim, mul.p, mul.done, "mul.out");
    const auto iface = mul_iface(mul);
    for (std::uint64_t v = 0; v < 16; ++v) (void)sim::qdi_apply_token(sim, iface, v);
    EXPECT_TRUE(mon.violations().empty())
        << (mon.violations().empty() ? "" : mon.violations()[0].what);
    EXPECT_EQ(mon.tokens_seen(), 16u);
}

TEST(QdiMultiplier, PostRouteEquivalence) {
    auto mul = asynclib::make_qdi_multiplier(2);
    core::ArchSpec arch = core::paper_arch();
    arch.width = 10;
    arch.height = 10;
    arch.channel_width = 14;
    const auto fr = cad::run_flow(mul.nl, mul.hints, arch, {});

    testsupport::PostRouteSim prs(fr);
    Simulator& sim = *prs.sim;
    const auto& design = prs.design;

    sim::QdiCombIface iface;
    for (std::size_t i = 0; i < 2; ++i)
        iface.inputs.push_back(testsupport::find_rails(design.nl, base::bus_bit("a", i)));
    for (std::size_t i = 0; i < 2; ++i)
        iface.inputs.push_back(testsupport::find_rails(design.nl, base::bus_bit("b", i)));
    for (std::size_t o = 0; o < 4; ++o)
        iface.outputs.push_back(testsupport::po_rails(design.nl, base::bus_bit("p", o)));
    iface.done = testsupport::po_net(design.nl, "done");

    for (std::uint64_t a = 0; a < 4; ++a)
        for (std::uint64_t b = 0; b < 4; ++b)
            EXPECT_EQ(sim::qdi_apply_token(sim, iface, a | (b << 2)), a * b);
}

TEST(QdiMultiplier, MintermPairingBoundsAtThreeInputs) {
    // Architectural boundary of the shared-input LE halves: a 3-input DIMS
    // block's minterm pair is C3+C3 with 4 shared rails + 2 feedbacks = 6
    // lines (fits, LUT2 usable), but a 4-input block's pair is C4+C4 with
    // 5 rails + 2 feedbacks = 7 lines (does not fit) — so the multiplier's
    // minterm LEs cannot co-locate and its partial validities stay plain.
    auto add = asynclib::make_qdi_adder(1);
    const auto md_add = cad::techmap(add.nl, add.hints);
    std::size_t lut2_add = 0;
    for (const auto& le : md_add.les) lut2_add += le.lut2.has_value();
    EXPECT_GE(lut2_add, 4u);  // 8 minterms -> 4 co-located pairs

    auto mul = asynclib::make_qdi_multiplier(2);
    const auto md_mul = cad::techmap(mul.nl, mul.hints);
    std::size_t lut2_mul = 0;
    for (const auto& le : md_mul.les) lut2_mul += le.lut2.has_value();
    EXPECT_EQ(lut2_mul, 0u);
}

TEST(QdiMultiplier, RejectsUnsupportedWidth) {
    EXPECT_THROW(asynclib::make_qdi_multiplier(4), base::Error);
}

}  // namespace
