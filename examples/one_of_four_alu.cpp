// Multi-rail (1-of-4) support: a small QDI arithmetic unit on 1-of-4 encoded
// digits, the encoding the paper calls out as the reason for the LE's
// multi-output LUT ("auxiliary outputs per LE are available for Multi-Rail
// signals"). One 1-of-4 digit carries two bits on four one-hot rails: fewer
// transitions per symbol than dual-rail (power) at the same DI robustness.
//
// The unit computes, per a 2-bit operand pair (x, y): increment, swap-add
// (x+y mod 4) — built with the generic 1-of-4 minterm expansion — and is
// implemented on the fabric and verified post-route.
#include <cstdio>

#include "asynclib/oneofn.hpp"
#include "cad/flow.hpp"
#include "eval/metrics.hpp"
#include "sim/simulator.hpp"

using namespace afpga;
using netlist::Logic;
using netlist::NetId;
using netlist::TruthTable;

int main() {
    // spec: out = (x + y) mod 4 over two 1-of-4 digits (4 bits -> 2 bits).
    netlist::Netlist nl("of4_add");
    const auto ins = asynclib::add_one_of_four_inputs(nl, "x", 2);
    const auto bit0 = TruthTable::from_function(4, [](std::uint32_t m) {
        return (((m & 3) + ((m >> 2) & 3)) & 1) != 0;
    });
    const auto bit1 = TruthTable::from_function(4, [](std::uint32_t m) {
        return (((m & 3) + ((m >> 2) & 3)) & 2) != 0;
    });
    auto res = asynclib::expand_one_of_four(nl, {bit0, bit1}, ins, "add");
    const NetId done = asynclib::add_of4_completion(nl, res.outputs, "cd");
    for (int s = 0; s < 4; ++s)
        nl.add_output("out.r" + std::to_string(s),
                      res.outputs[0].rail[static_cast<std::size_t>(s)]);
    nl.add_output("done", done);
    nl.validate();
    std::printf("1-of-4 adder mod 4: %zu cells (%zu minterm C-gates)\n", nl.num_cells(),
                res.num_minterm_gates);

    const auto fr = cad::run_flow(nl, res.hints, core::paper_arch(), {});
    std::printf("%s\n\n", eval::summarize(fr).c_str());

    const auto design = fr.elaborate();
    sim::Simulator sim(design.nl);
    for (const auto& d : core::resolve_wire_delays(design))
        sim.set_sink_delay(d.net, d.sink_idx, d.delay_ps);
    sim.run();

    auto po_net = [&](const std::string& name) {
        for (const auto& [n, net] : design.nl.primary_outputs())
            if (n == name) return net;
        return NetId::invalid();
    };
    NetId in_rail[2][4];
    for (int d = 0; d < 2; ++d)
        for (int s = 0; s < 4; ++s)
            in_rail[d][s] = design.nl.find_net("x[" + std::to_string(d) + "].r" +
                                               std::to_string(s));
    NetId out_rail[4];
    for (int s = 0; s < 4; ++s) out_rail[s] = po_net("out.r" + std::to_string(s));
    const NetId pdone = po_net("done");

    std::printf(" x + y = out (1-of-4 one-hot rails)\n");
    int correct = 0;
    for (std::uint64_t x = 0; x < 4; ++x) {
        for (std::uint64_t y = 0; y < 4; ++y) {
            // 4-phase: raise exactly one rail per digit, wait done, read, RTZ.
            sim.schedule_pi(in_rail[0][x], Logic::T);
            sim.schedule_pi(in_rail[1][y], Logic::T);
            sim.run_until(pdone, Logic::T, sim.now() + 10'000'000);
            int got = -1;
            int fired = 0;
            for (int s = 0; s < 4; ++s)
                if (sim.value(out_rail[s]) == Logic::T) {
                    got = s;
                    ++fired;
                }
            const bool ok = fired == 1 && got == static_cast<int>((x + y) % 4);
            correct += ok;
            std::printf(" %llu + %llu = %d %s\n", static_cast<unsigned long long>(x),
                        static_cast<unsigned long long>(y), got, ok ? "" : "  <-- WRONG");
            sim.schedule_pi(in_rail[0][x], Logic::F);
            sim.schedule_pi(in_rail[1][y], Logic::F);
            sim.run_until(pdone, Logic::F, sim.now() + 10'000'000);
        }
    }
    std::printf("%d/16 symbol pairs correct post-route\n", correct);
    return correct == 16 ? 0 : 1;
}
