// Full-adder tour: the paper's Fig. 3 demonstration as a narrated example.
//
// The same 1-bit full adder is implemented in the two styles the paper
// demonstrates — micropipeline (bundled data + matched delay, Fig. 3a) and
// QDI (dual-rail DIMS, Fig. 3b) — on the same fabric, showing how one
// architecture hosts both. See bench/fig3_full_adder for the mapping tables;
// this example focuses on the protocol behaviour.
#include <cstdio>

#include "asynclib/adders.hpp"
#include "cad/flow.hpp"
#include "sim/simulator.hpp"
#include "sim/testbench.hpp"
#include "sim/vcd.hpp"

using namespace afpga;

namespace {

netlist::NetId po_net(const netlist::Netlist& nl, const std::string& name) {
    for (const auto& [n, net] : nl.primary_outputs())
        if (n == name) return net;
    return netlist::NetId::invalid();
}

void tour_micropipeline() {
    std::printf("--- micropipeline style (Fig. 3a) ---\n");
    std::printf("Data travels on plain wires; validity is a request signal whose\n");
    std::printf("path is delayed by the PDE to outlast the datapath (bundling).\n\n");

    auto adder = asynclib::make_micropipeline_adder(1);
    const auto fr = cad::run_flow(adder.nl, {}, core::paper_arch(), {});
    const auto design = fr.elaborate();

    sim::Simulator sim(design.nl);
    for (const auto& d : core::resolve_wire_delays(design))
        sim.set_sink_delay(d.net, d.sink_idx, d.delay_ps);
    sim.run();
    // Drop a waveform for inspection with gtkwave.
    sim::VcdWriter vcd(sim, "mp_full_adder.vcd");

    sim::BundledStageIface iface;
    iface.data_in = {design.nl.find_net("a[0]"), design.nl.find_net("b[0]"),
                     design.nl.find_net("cin")};
    iface.req_in = design.nl.find_net("req_in");
    iface.ack_out = design.nl.find_net("ack_out");
    iface.data_out = {po_net(design.nl, "sum[0]"), po_net(design.nl, "cout")};
    iface.req_out = po_net(design.nl, "req_out");
    iface.ack_in = po_net(design.nl, "ack_in");

    std::printf(" a b cin | sum cout (4-phase handshake per row)\n");
    for (std::uint64_t v = 0; v < 8; ++v) {
        const std::uint64_t out = sim::bundled_apply_token(sim, iface, v, 200);
        std::printf(" %llu %llu  %llu  |  %llu   %llu\n",
                    static_cast<unsigned long long>(v & 1),
                    static_cast<unsigned long long>((v >> 1) & 1),
                    static_cast<unsigned long long>((v >> 2) & 1),
                    static_cast<unsigned long long>(out & 1),
                    static_cast<unsigned long long>((out >> 1) & 1));
    }
    std::printf("waveform written to mp_full_adder.vcd\n\n");
}

void tour_qdi() {
    std::printf("--- QDI style (Fig. 3b) ---\n");
    std::printf("Each bit rides two rails (one-hot); validity is IN the data, so no\n");
    std::printf("timing assumption is needed: completion is detected, not assumed.\n\n");

    auto adder = asynclib::make_qdi_adder(1);
    const auto fr = cad::run_flow(adder.nl, adder.hints, core::paper_arch(), {});
    const auto design = fr.elaborate();

    sim::Simulator sim(design.nl);
    for (const auto& d : core::resolve_wire_delays(design))
        sim.set_sink_delay(d.net, d.sink_idx, d.delay_ps);
    sim.run();
    sim::VcdWriter vcd(sim, "qdi_full_adder.vcd");

    sim::QdiCombIface iface;
    iface.inputs = {{design.nl.find_net("a[0].t"), design.nl.find_net("a[0].f")},
                    {design.nl.find_net("b[0].t"), design.nl.find_net("b[0].f")},
                    {design.nl.find_net("cin.t"), design.nl.find_net("cin.f")}};
    iface.outputs = {{po_net(design.nl, "sum[0].t"), po_net(design.nl, "sum[0].f")},
                     {po_net(design.nl, "cout.t"), po_net(design.nl, "cout.f")}};
    iface.done = po_net(design.nl, "done");

    std::printf(" a b cin | sum cout   (token -> done rises -> spacer -> done falls)\n");
    for (std::uint64_t v = 0; v < 8; ++v) {
        const std::int64_t t0 = sim.now();
        const std::uint64_t out = sim::qdi_apply_token(sim, iface, v);
        std::printf(" %llu %llu  %llu  |  %llu   %llu    cycle %lld ps\n",
                    static_cast<unsigned long long>(v & 1),
                    static_cast<unsigned long long>((v >> 1) & 1),
                    static_cast<unsigned long long>((v >> 2) & 1),
                    static_cast<unsigned long long>(out & 1),
                    static_cast<unsigned long long>((out >> 1) & 1),
                    static_cast<long long>(sim.now() - t0));
    }
    std::printf("waveform written to qdi_full_adder.vcd\n\n");
}

}  // namespace

int main() {
    std::printf("=== One adder, two asynchronous styles, one fabric ===\n\n");
    tour_micropipeline();
    tour_qdi();
    std::printf("Both implementations run on identical PLBs — the style lives in the\n");
    std::printf("configuration bits, not in the silicon. That is the paper's thesis.\n");
    return 0;
}
