// Quickstart: the 60-second tour of the library.
//
// Builds a small QDI circuit (a dual-rail WCHB FIFO), implements it on the
// multi-style asynchronous FPGA with the full CAD flow, reconstructs the
// programmed circuit from the bitstream, and streams tokens through it.
//
//   netlist  ->  techmap/pack/place/route  ->  bitstream  ->  simulate
//
// Build & run:  cmake -B build -G Ninja && cmake --build build &&
//               ./build/examples/quickstart
#include <cstdio>

#include "asynclib/fifos.hpp"
#include "cad/flow.hpp"
#include "eval/metrics.hpp"
#include "sim/channels.hpp"
#include "sim/simulator.hpp"

using namespace afpga;

int main() {
    // 1. Generate an asynchronous circuit. The library ships generators for
    //    QDI dual-rail (DIMS, WCHB), 1-of-4 and micropipeline styles; all of
    //    them return a gate-level Netlist plus MappingHints that tell the
    //    technology mapper which signals like to share a Logic Element.
    auto fifo = asynclib::make_wchb_fifo(/*n_bits=*/2, /*n_stages=*/2);
    std::printf("netlist: %zu cells, %zu nets\n", fifo.nl.num_cells(), fifo.nl.num_nets());

    // 2. Implement it on the paper's fabric (8x8 PLBs; each PLB = IM + two
    //    LUT7-3+LUT2 LEs + PDE). One call runs techmap -> pack -> place ->
    //    route and programs a bit-exact configuration bitstream.
    const core::ArchSpec arch = core::paper_arch();
    const cad::FlowResult fr = cad::run_flow(fifo.nl, fifo.hints, arch, {});
    std::printf("implementation: %s\n", eval::summarize(fr).c_str());
    std::printf("bitstream: %zu bits (%zu routing switches on)\n",
                fr.bits->size_bits(), fr.bits->num_enabled_edges());

    // 3. Decode the bitstream back into a simulatable circuit. Nothing from
    //    the original netlist is consulted — what runs below is exactly what
    //    the configuration bits say.
    const core::ElaboratedDesign design = fr.elaborate();
    sim::Simulator sim(design.nl);
    for (const auto& d : core::resolve_wire_delays(design))
        sim.set_sink_delay(d.net, d.sink_idx, d.delay_ps);
    sim.run();  // settle into the all-zero (post-reset) idle state

    // 4. Stream tokens through the 4-phase dual-rail channels.
    auto po_net = [&](const std::string& name) {
        for (const auto& [n, net] : design.nl.primary_outputs())
            if (n == name) return net;
        return netlist::NetId::invalid();
    };
    std::vector<asynclib::DualRail> in = {
        {design.nl.find_net("in[0].t"), design.nl.find_net("in[0].f")},
        {design.nl.find_net("in[1].t"), design.nl.find_net("in[1].f")}};
    std::vector<asynclib::DualRail> out = {{po_net("out[0].t"), po_net("out[0].f")},
                                           {po_net("out[1].t"), po_net("out[1].f")}};

    const std::vector<std::uint64_t> tokens{2, 0, 3, 1, 2, 2};
    sim::DrStreamSource source(sim, in, po_net("ack_in"), tokens, /*env_delay_ps=*/100);
    sim::DrStreamSink sink(sim, out, design.nl.find_net("ack_out"), 100);
    source.start();
    sim.run(1'000'000'000);

    std::printf("sent     :");
    for (std::uint64_t t : tokens) std::printf(" %llu", static_cast<unsigned long long>(t));
    std::printf("\nreceived :");
    for (std::uint64_t t : sink.received())
        std::printf(" %llu", static_cast<unsigned long long>(t));
    std::printf("\nsteady token period: %.0f ps\n", sink.times().steady_period_ps());
    std::printf("%s\n", sink.received() == tokens ? "OK: FIFO preserved the token stream"
                                                  : "MISMATCH");
    return sink.received() == tokens ? 0 : 1;
}
