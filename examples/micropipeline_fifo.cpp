// Why the PDE is programmable — and when you can get away without margin.
//
// Two sweeps on bundled-data circuits, scaling the matched delay from
// generous to broken:
//
//  1. a plain FIFO (no logic between stages): data flows through transparent
//     latches long before the request arrives, so even a savagely
//     under-scaled delay does not corrupt it — the bundling constraint is
//     trivially met;
//  2. an 8-bit micropipeline ADDER (ripple-carry logic behind the latches):
//     the request must outlast the carry chain; scale the delay down and
//     long-carry sums are sampled mid-flight.
//
// The contrast is the design rule: the PDE must cover the *datapath*, and
// how much datapath a stage has is a style/circuit property the fabric
// cannot know — hence a programmable delay element per PLB.
#include <cstdio>

#include "asynclib/adders.hpp"
#include "asynclib/fifos.hpp"
#include "base/check.hpp"
#include "sim/channels.hpp"
#include "sim/monitors.hpp"
#include "sim/simulator.hpp"
#include "sim/testbench.hpp"

using namespace afpga;

namespace {

bool fifo_clean(double scale) {
    auto fifo = asynclib::make_micropipeline_fifo(4, 3, 0.25);
    for (const auto& st : fifo.stages) {
        const std::int64_t tuned = fifo.nl.cell(st.delay_cell).delay_ps.value_or(200);
        fifo.nl.set_cell_delay(st.delay_cell,
                               std::max<std::int64_t>(1, static_cast<std::int64_t>(tuned * scale)));
    }
    sim::Simulator sim(fifo.nl);
    sim.run();
    std::vector<std::uint64_t> tokens;
    for (std::uint64_t i = 0; i < 24; ++i) tokens.push_back((i * 7 + 3) & 0xF);
    sim::BdStreamSource src(sim, fifo.in, fifo.req_in, fifo.ack_in, tokens, 40, 50);
    sim::BdStreamSink sink(sim, fifo.out, fifo.req_out, fifo.ack_out, 40);
    src.start();
    sim.run(500'000'000);
    return sink.received() == tokens;
}

struct AdderResult {
    int correct = 0;
    int total = 0;
};

AdderResult adder_check(double scale) {
    auto adder = asynclib::make_micropipeline_adder(8, 0.25);
    const std::int64_t tuned = adder.nl.cell(adder.stage.delay_cell).delay_ps.value_or(200);
    adder.nl.set_cell_delay(adder.stage.delay_cell,
                            std::max<std::int64_t>(1, static_cast<std::int64_t>(tuned * scale)));
    sim::Simulator sim(adder.nl);
    sim.run();
    sim::BundledStageIface iface;
    iface.data_in = adder.a;
    iface.data_in.insert(iface.data_in.end(), adder.b.begin(), adder.b.end());
    iface.data_in.push_back(adder.cin);
    iface.req_in = adder.req_in;
    iface.ack_out = adder.ack_out;
    iface.data_out = adder.sum;
    iface.data_out.push_back(adder.cout);
    iface.req_out = adder.req_out;
    iface.ack_in = adder.ack_in;

    AdderResult r;
    // Long-carry stimuli: 0xFF + 1 must ripple through every bit.
    const std::pair<std::uint64_t, std::uint64_t> stims[] = {
        {0xFF, 0x01}, {0x7F, 0x01}, {0xFF, 0xFF}, {0xF0, 0x10}, {0xAA, 0x55}, {0x01, 0xFF}};
    for (const auto& [a, b] : stims) {
        ++r.total;
        try {
            const std::uint64_t got =
                sim::bundled_apply_token(sim, iface, a | (b << 8), 100);
            r.correct += (got == a + b);
        } catch (const base::Error&) {
            // X on outputs or stuck handshake: failure.
        }
    }
    return r;
}

}  // namespace

int main() {
    std::printf("=== Matched-delay scale sweep: FIFO vs adder ===\n\n");
    std::printf("delay scale | FIFO (no logic) | 8-bit adder (ripple logic)\n");
    std::printf("---------------------------------------------------------\n");
    bool adder_ok_at_full = false;
    bool adder_breaks = false;
    for (double scale : {2.0, 1.0, 0.5, 0.1}) {
        const bool f = fifo_clean(scale);
        const AdderResult a = adder_check(scale);
        std::printf("%10.1fx | %15s | %d/%d %s\n", scale, f ? "clean" : "BROKEN", a.correct,
                    a.total, a.correct == a.total ? "clean" : "CORRUPTED");
        if (scale >= 1.0 && a.correct == a.total) adder_ok_at_full = true;
        if (scale <= 0.5 && a.correct < a.total) adder_breaks = true;
    }
    std::printf("\nThe FIFO survives any delay (data precedes the request through\n");
    std::printf("transparent latches), but the adder's carry chain must be covered:\n");
    std::printf("the bundling constraint binds exactly when a stage has a datapath.\n");
    std::printf("On the fabric the PDE tap absorbs this, sized per stage by the flow\n");
    std::printf("(see bench/abl_pde_resolution for the post-route version).\n");
    return adder_ok_at_full && adder_breaks ? 0 : 1;
}
