// A realistic QDI datapath block: 4-bit dual-rail ripple-carry adder with
// group completion, implemented on the fabric and validated post-route with
// random vectors and protocol monitors. Demonstrates average-case behaviour:
// the completion time of a QDI adder tracks the actual carry chain of each
// input pair, not the worst case.
#include <cstdio>

#include "asynclib/adders.hpp"
#include "base/rng.hpp"
#include "base/strings.hpp"
#include "cad/flow.hpp"
#include "eval/metrics.hpp"
#include "sim/monitors.hpp"
#include "sim/simulator.hpp"
#include "sim/testbench.hpp"

using namespace afpga;

namespace {
constexpr std::size_t kBits = 4;
}

int main() {
    auto adder = asynclib::make_qdi_adder(kBits);
    std::printf("4-bit QDI ripple adder: %zu cells, %zu nets\n", adder.nl.num_cells(),
                adder.nl.num_nets());

    core::ArchSpec arch = core::paper_arch();
    arch.width = 10;
    arch.height = 10;
    arch.channel_width = 14;
    const auto fr = cad::run_flow(adder.nl, adder.hints, arch, {});
    std::printf("%s\n\n", eval::summarize(fr).c_str());

    const auto design = fr.elaborate();
    sim::Simulator sim(design.nl);
    for (const auto& d : core::resolve_wire_delays(design))
        sim.set_sink_delay(d.net, d.sink_idx, d.delay_ps);
    sim.run();

    auto po_net = [&](const std::string& name) {
        for (const auto& [n, net] : design.nl.primary_outputs())
            if (n == name) return net;
        return netlist::NetId::invalid();
    };
    sim::QdiCombIface iface;
    for (std::size_t i = 0; i < kBits; ++i)
        iface.inputs.push_back({design.nl.find_net(base::bus_bit("a", i) + ".t"),
                                design.nl.find_net(base::bus_bit("a", i) + ".f")});
    for (std::size_t i = 0; i < kBits; ++i)
        iface.inputs.push_back({design.nl.find_net(base::bus_bit("b", i) + ".t"),
                                design.nl.find_net(base::bus_bit("b", i) + ".f")});
    iface.inputs.push_back({design.nl.find_net("cin.t"), design.nl.find_net("cin.f")});
    for (std::size_t i = 0; i < kBits; ++i)
        iface.outputs.push_back({po_net(base::bus_bit("sum", i) + ".t"),
                                 po_net(base::bus_bit("sum", i) + ".f")});
    iface.outputs.push_back({po_net("cout.t"), po_net("cout.f")});
    iface.done = po_net("done");

    sim::DualRailChannelMonitor mon(sim, iface.outputs, iface.done, "adder.out");

    base::Rng rng(2026);
    int correct = 0;
    const int kVectors = 64;
    std::int64_t fastest = INT64_MAX;
    std::int64_t slowest = 0;
    for (int k = 0; k < kVectors; ++k) {
        const std::uint64_t a = rng.below(16);
        const std::uint64_t b = rng.below(16);
        const std::uint64_t cin = rng.below(2);
        const std::uint64_t v = a | (b << kBits) | (cin << (2 * kBits));
        const std::int64_t t0 = sim.now();
        const std::uint64_t got = sim::qdi_apply_token(sim, iface, v);
        const std::int64_t cycle = sim.now() - t0;
        fastest = std::min(fastest, cycle);
        slowest = std::max(slowest, cycle);
        correct += (got == a + b + cin);
    }
    std::printf("random vectors: %d/%d correct\n", correct, kVectors);
    std::printf("protocol: %zu violations, %llu tokens observed\n", mon.violations().size(),
                static_cast<unsigned long long>(mon.tokens_seen()));
    std::printf("4-phase cycle time: fastest %lld ps, slowest %lld ps "
                "(data-dependent completion — the QDI average-case property)\n",
                static_cast<long long>(fastest), static_cast<long long>(slowest));
    return correct == kVectors && mon.violations().empty() ? 0 : 1;
}
